"""NAMD — parallel molecular dynamics (apoa1-style traffic).

NAMD decomposes space into patches and objects into compute tasks; every
time step, patches multicast atom positions to the compute objects that
need them, forces flow back, and an energy reduction closes the step.  The
consequence the paper cares about (Figure 9(c)): "there is no visible
interval where the application is not exchanging data over the network" —
traffic is dense and continuously overlapped with compute, which caps the
achievable speedup because the adaptive quantum never gets a silent stretch
to grow in.

We reproduce that shape: each rank interleaves position sends, force
receives, and compute slices so packets are in flight throughout the step,
then ends the step with a small energy ``allreduce``.  The application
metric is NAMD's own: wall-clock time for the run.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.cluster import RunResult
from repro.engine.units import SECOND
from repro.mpi.api import MpiRank
from repro.node.requests import Compute, Request
from repro.workloads.base import Workload


class NamdWorkload(Workload):
    """Dense, continuously-communicating molecular-dynamics steps."""

    name = "NAMD"
    metric_name = "wall-clock s"
    metric_kind = "time"

    def __init__(
        self,
        timesteps: int = 12,
        step_ops: float = 1.2e9,
        position_bytes: int = 8_192,
        force_bytes: int = 4_096,
        max_partners: int = 7,
        energy_bytes: int = 64,
        pme_every: int = 2,
        pme_bytes: int = 2_048,
    ) -> None:
        """Args:
        timesteps: MD integration steps.
        step_ops: force-evaluation work of the whole molecule per step
            (split across ranks; NAMD strong-scales a fixed system, so
            per-rank compute slices thin out as the cluster grows and the
            traffic density rises — the paper's 64-node speed worst case).
        position_bytes: per-partner position multicast payload.
        force_bytes: per-partner force return payload.
        max_partners: neighbour-list fan-out per rank (capped by size-1).
        energy_bytes: payload of the per-step energy reduction.
        pme_every: run the PME long-range electrostatics phase (an
            FFT-transpose all-to-all, apoa1's default full-electrostatics
            cadence) every this many steps; 0 disables PME.
        pme_bytes: per-pair payload of each PME transpose message.
        """
        if timesteps < 1:
            raise ValueError("timesteps must be positive")
        if max_partners < 1:
            raise ValueError("max_partners must be positive")
        if pme_every < 0:
            raise ValueError("pme_every must be non-negative")
        self.timesteps = timesteps
        self.step_ops = step_ops
        self.position_bytes = position_bytes
        self.force_bytes = force_bytes
        self.max_partners = max_partners
        self.energy_bytes = energy_bytes
        self.pme_every = pme_every
        self.pme_bytes = pme_bytes

    def metric(self, result: RunResult) -> float:
        """NAMD reports wall-clock time (here: simulated seconds)."""
        return result.makespan / SECOND

    def _partners(self, rank: int, size: int) -> list[int]:
        """Spatial neighbour list: symmetric ring offsets around the rank.

        The list must be an involution across ranks (if B is A's neighbour,
        A is B's), or the position exchange deadlocks; so partners come in
        ±offset pairs, with the antipode added when the requested fan-out is
        odd and the ring length is even.
        """
        count = min(self.max_partners, size - 1)
        if count == size - 1:
            return [peer for peer in range(size) if peer != rank]
        partners = []
        for offset in range(1, count // 2 + 1):
            partners.append((rank + offset) % size)
            partners.append((rank - offset) % size)
        if count % 2 == 1 and size % 2 == 0:
            antipode = (rank + size // 2) % size
            if antipode not in partners:
                partners.append(antipode)
        return partners

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        rank, size = mpi.rank, mpi.size
        partners = self._partners(rank, size)
        # Compute is sliced so packets and work interleave continuously.
        slices = 2 * len(partners)
        slice_ops = self.step_ops / size / slices
        energy = float(rank)
        yield from mpi.barrier()
        for step in range(self.timesteps):
            position_tag = 400
            force_tag = 401
            # Multicast positions, interleaving force-field work.
            for partner in partners:
                yield from mpi.send(partner, self.position_bytes, tag=position_tag)
                yield Compute(ops=slice_ops)
            # Consume partner positions as they arrive, computing pairwise
            # forces after each; then return the force contributions.
            for partner in partners:
                yield from mpi.recv(src=partner, tag=position_tag)
                yield Compute(ops=slice_ops)
                yield from mpi.send(partner, self.force_bytes, tag=force_tag)
            for partner in partners:
                yield from mpi.recv(src=partner, tag=force_tag)
            # PME long-range electrostatics: the 3-D FFT grid transpose is
            # an all-to-all over the whole machine.
            if self.pme_every and (step + 1) % self.pme_every == 0:
                yield from mpi.alltoall(self.pme_bytes)
            # Step-closing energy reduction (keeps ranks loosely in step,
            # like NAMD's periodic reductions).
            energy = yield from mpi.allreduce(
                self.energy_bytes, energy, lambda a, b: a + b
            )
        return {"energy": energy, "steps": self.timesteps}
