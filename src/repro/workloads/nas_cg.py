"""NAS CG — Conjugate Gradient.

"Computes an approximation to the smallest eigenvalue of a large, sparse,
symmetric positive definite matrix.  Exhibits irregular long distance
communication."  Each CG iteration performs a distributed sparse
matrix-vector product — partial-vector exchanges with *transpose partners*
(ranks at power-of-two distances, the long-distance irregular pattern of
the real kernel's row/column communicators) — followed by two dot-product
``allreduce`` operations that globally couple every iteration.

The per-iteration global reductions give CG a steady heartbeat of small
latency-critical messages on top of the bulkier matvec exchanges.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpi.api import MpiRank
from repro.node.requests import Compute, Request
from repro.workloads.base import NasWorkload


class CgWorkload(NasWorkload):
    """Distributed CG iterations: matvec exchanges + dot-product reductions."""

    name = "CG"

    def __init__(
        self,
        iterations: int = 15,
        nonzeros: float = 9.6e7,
        ops_per_nonzero: float = 4.0,
        vector_bytes: int = 320_000,
        dot_bytes: int = 8,
    ) -> None:
        """Args:
        iterations: CG iterations (NAS class A runs 15).
        nonzeros: matrix nonzeros; matvec work is proportional.
        ops_per_nonzero: multiply-add + index cost per nonzero.
        vector_bytes: total bytes of partial vectors exchanged per matvec
            (split across the partner sweep and ranks).
        dot_bytes: payload of each dot-product reduction.
        """
        super().__init__(reference_ops=nonzeros * ops_per_nonzero * iterations)
        if iterations < 1:
            raise ValueError("iterations must be positive")
        self.iterations = iterations
        self.nonzeros = nonzeros
        self.ops_per_nonzero = ops_per_nonzero
        self.vector_bytes = vector_bytes
        self.dot_bytes = dot_bytes

    @staticmethod
    def _partners(rank: int, size: int) -> list[tuple[int, int]]:
        """Transpose partners: XOR pairing at power-of-two strides.

        XOR pairing is an involution (A's partner's partner is A), so the
        send/recv pattern is symmetric and deadlock-free for any size; ranks
        whose partner falls outside the communicator sit that stride out.
        Returns ``(stride_exponent, partner)`` pairs — message tags must be
        derived from the stride, not the list position, so both sides of an
        exchange agree even when one of them skipped earlier strides.
        """
        partners = []
        exponent = 0
        while (1 << exponent) < size:
            partner = rank ^ (1 << exponent)
            if partner < size:
                partners.append((exponent, partner))
            exponent += 1
        return partners

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        size, rank = mpi.size, mpi.rank
        partners = self._partners(rank, size)
        exchange_bytes = max(64, self.vector_bytes // max(1, len(partners)) // size)
        matvec_ops = self.nonzeros * self.ops_per_nonzero / size
        residual = 1.0
        yield from mpi.barrier()
        for iteration in range(self.iterations):
            # Distributed matvec: exchange partial vectors with transpose
            # partners, interleaved with the local multiply work.
            per_partner_ops = matvec_ops / max(1, len(partners))
            for exponent, partner in partners:
                tag = 100 + exponent
                yield from mpi.send(partner, exchange_bytes, tag=tag)
                yield from mpi.recv(src=partner, tag=tag)
                yield Compute(ops=per_partner_ops)
            # Two global dot products per iteration (rho and alpha).
            rho = yield from mpi.allreduce(self.dot_bytes, residual, lambda a, b: a + b)
            residual = rho / (iteration + 1.0)
            yield from mpi.allreduce(self.dot_bytes, residual, lambda a, b: a + b)
        return {"residual": residual}
