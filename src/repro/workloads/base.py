"""Workload abstractions and application metrics.

A workload is a factory of SPMD programs plus the *application-specific
metric* the paper uses to measure accuracy: "The accuracy measurement is
derived from the application-specific metric reported by the benchmarks
themselves ... NAMD reports wall-clock time and NAS reports MOPS."  The
metric is computed from the application's own simulated timeline (the
makespan), so straggler-delayed messages distort it exactly the way a
dilated guest run distorts the benchmark's self-reported numbers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Generator, Iterable, Optional

from repro.core.cluster import RunResult
from repro.engine.units import SECOND
from repro.mpi.api import MpiRank, spmd_apps
from repro.node.requests import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.collector import TraceCollector


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, the NAS suite's aggregation rule for MOPS."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of no values")
    if any(value <= 0 for value in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / value for value in values)


class Workload(ABC):
    """A distributed application model."""

    #: Short identifier used in tables ("EP", "IS", ..., "NAMD").
    name: str = "workload"
    #: Human name of the application metric ("MOPS", "wall-clock s").
    metric_name: str = "metric"
    #: "rate" metrics (MOPS) improve upward; "time" metrics downward;
    #: "percentile" metrics are latency-distribution points (service
    #: workloads' p99) — like "time" they improve downward, but they
    #: summarise a per-request sample rather than the makespan.
    metric_kind: str = "rate"

    @abstractmethod
    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        """The SPMD body for one rank."""

    def build_apps(self, size: int) -> list[Generator[Request, Any, Any]]:
        """One fresh application generator per rank."""
        return spmd_apps(size, self.program)

    @abstractmethod
    def metric(self, result: RunResult) -> float:
        """The application-reported performance number for a finished run."""

    def accuracy_error(self, result: RunResult, ground_truth: RunResult) -> float:
        """Relative error of this run's metric vs. the ground-truth run's.

        This is the paper's accuracy measure: the experiment with the
        smallest quantum is the reference, and each configuration's
        application-reported metric is compared against it.
        """
        reference = self.metric(ground_truth)
        if reference == 0:
            raise ValueError("ground-truth metric is zero")
        return abs(self.metric(result) - reference) / abs(reference)

    def exec_time_ratio(self, result: RunResult, ground_truth: RunResult) -> float:
        """Simulated execution-time dilation vs. ground truth.

        The paper reports this for NAS-IS at 64 nodes ("Simulated Exec.
        Ratio vs. 1 us"), where the MOPS error saturates at ~100 % and stops
        being informative.
        """
        if ground_truth.makespan == 0:
            raise ValueError("ground-truth run has zero makespan")
        return result.makespan / ground_truth.makespan

    def attach_trace(self, collector: Optional["TraceCollector"]) -> None:
        """Offer the run's trace collector to the workload (or ``None`` to
        detach it).

        Most workloads ignore tracing; workloads that emit application-level
        trace events (the service workload's request lifecycle) override
        this.  The harness detaches the collector while replaying a
        checkpoint's application log so replayed steps are not re-emitted.
        """

    def progress_summary(self) -> Optional[str]:
        """A one-line live progress report, or ``None`` if the workload
        tracks none.

        Used by the harness watchdog and incomplete-run diagnostics to
        report application progress (e.g. requests completed/in flight)
        alongside simulated time.  Only meaningful in the process that ran
        ``build_apps``; sharded workers each see their own copy.
        """
        return None

    def describe(self) -> str:
        return self.name


class NasWorkload(Workload):
    """Common machinery for the NAS kernels: MOPS from a fixed op budget.

    NAS benchmarks report Millions of Operations Per Second where the
    operation count is defined by the problem class, not by the wall clock;
    a timing-dilated run therefore reports proportionally lower MOPS.
    """

    metric_name = "MOPS"
    metric_kind = "rate"

    def __init__(self, reference_ops: float) -> None:
        if reference_ops <= 0:
            raise ValueError("reference op count must be positive")
        self.reference_ops = reference_ops

    def metric(self, result: RunResult) -> float:
        makespan_seconds = result.makespan / SECOND
        if makespan_seconds <= 0:
            raise ValueError("run has no makespan; did it complete?")
        return self.reference_ops / 1e6 / makespan_seconds
