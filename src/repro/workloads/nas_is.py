"""NAS IS — Integer Sort.

"Performs a sorting operation used frequently in particle-method codes.
Requires moderate data communication and significant synchronization."
Each iteration histograms the local keys, combines bucket counts with an
``allreduce``, and redistributes the keys with a bulk ``alltoall`` — the
``MPI_Alltoall`` whose "long chains of packet dependences" make IS the
paper's accuracy worst case (Section 6: simulated execution dilated 150x at
a 100 us quantum).

The all-to-all chain is the point: every pairwise-exchange step blocks on a
message from a different peer, so each straggler-delayed delivery pushes the
whole remaining chain — there is no slack to absorb it.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpi.api import MpiRank
from repro.node.requests import Compute, Request
from repro.workloads.base import NasWorkload


class IsWorkload(NasWorkload):
    """Iterated bucket sort with all-to-all key redistribution."""

    name = "IS"

    def __init__(
        self,
        total_keys: int = 2**21,
        iterations: int = 10,
        ops_per_key: float = 128.0,
        key_bytes: int = 4,
        histogram_bytes: int = 1024,
    ) -> None:
        """Args:
        total_keys: keys sorted per iteration (split across ranks).
        iterations: full sort repetitions (NAS IS runs 10).
        ops_per_key: counting + ranking cost per key per iteration.
        key_bytes: bytes per key on the wire.
        histogram_bytes: size of the bucket-count reduction payload.
        """
        super().__init__(reference_ops=float(total_keys) * iterations)
        if total_keys < 1 or iterations < 1:
            raise ValueError("total_keys and iterations must be positive")
        self.total_keys = total_keys
        self.iterations = iterations
        self.ops_per_key = ops_per_key
        self.key_bytes = key_bytes
        self.histogram_bytes = histogram_bytes

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        size = mpi.size
        rank_keys = self.total_keys // size
        # Each rank ships roughly keys/size to every other rank.
        exchange_bytes = max(1, rank_keys // size) * self.key_bytes
        yield from mpi.barrier()
        checksum = 0.0
        for _ in range(self.iterations):
            # Local bucket counting.
            yield Compute(ops=rank_keys * self.ops_per_key * 0.5)
            # Global bucket histogram.
            counts = yield from mpi.allreduce(
                self.histogram_bytes, float(rank_keys), lambda a, b: a + b
            )
            checksum += counts
            # Bulk key redistribution: the fully-coupled exchange chain.
            yield from mpi.alltoall(exchange_bytes)
            # Local ranking of the received keys.
            yield Compute(ops=rank_keys * self.ops_per_key * 0.5)
        # Full verification (partial sums exchanged once at the end).
        total = yield from mpi.allreduce(64, checksum, lambda a, b: a + b)
        return {"rank_keys": rank_keys, "checksum": total}
