"""NAS MG — Multigrid.

"Simplified multigrid kernel solving a 3-D Poisson PDE.  Exhibits both
short and long distance highly structured communication patterns."  Each
V-cycle walks down the grid hierarchy and back: at fine levels ranks
exchange *large* halos with *near* neighbours; at coarse levels the grid is
distributed across fewer effective ranks, so the halos are *small* but
travel *long* logical distances (large rank strides) — the short+long
mixture the NAS documentation describes.

Halo exchanges use XOR pairing per level (symmetric, deadlock-free), with
message size shrinking and partner stride growing as the cycle coarsens.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpi.api import MpiRank
from repro.node.requests import Compute, Request
from repro.workloads.base import NasWorkload


class MgWorkload(NasWorkload):
    """V-cycle multigrid with level-dependent halo exchanges."""

    name = "MG"

    def __init__(
        self,
        cycles: int = 4,
        levels: int = 5,
        fine_points: float = 4.8e7,
        ops_per_point: float = 8.0,
        fine_halo_bytes: int = 65_536,
        min_halo_bytes: int = 256,
    ) -> None:
        """Args:
        cycles: V-cycles (NAS MG class A runs 4 full cycles).
        levels: grid levels per cycle.
        fine_points: grid points at the finest level (work scales /8 per
            level, the 3-D coarsening ratio).
        ops_per_point: smoother cost per point per visit.
        fine_halo_bytes: halo size at the finest level (shrinks /4 per
            level, the 2-D face coarsening ratio).
        min_halo_bytes: floor for coarse-level halo messages.
        """
        total_points = sum(fine_points / 8**level for level in range(levels))
        # Down-sweep + up-sweep visit every level twice per cycle.
        super().__init__(reference_ops=2 * cycles * total_points * ops_per_point)
        if cycles < 1 or levels < 1:
            raise ValueError("cycles and levels must be positive")
        self.cycles = cycles
        self.levels = levels
        self.fine_points = fine_points
        self.ops_per_point = ops_per_point
        self.fine_halo_bytes = fine_halo_bytes
        self.min_halo_bytes = min_halo_bytes

    def _level_partner(self, rank: int, size: int, level: int) -> int | None:
        """Halo partner at *level*: stride doubles as the grid coarsens."""
        stride = 1 << level
        if stride >= size:
            stride = size >> 1
        if stride == 0:
            return None
        partner = rank ^ stride
        return partner if partner < size else None

    def _level_visit(
        self, mpi: MpiRank, level: int
    ) -> Generator[Request, Any, None]:
        size = mpi.size
        halo = max(self.min_halo_bytes, self.fine_halo_bytes // 4**level)
        points = self.fine_points / 8**level / size
        partner = self._level_partner(mpi.rank, size, level)
        if partner is not None:
            tag = 200 + level
            yield from mpi.send(partner, halo, tag=tag)
            yield from mpi.recv(src=partner, tag=tag)
        yield Compute(ops=max(1.0, points * self.ops_per_point))

    def program(self, mpi: MpiRank) -> Generator[Request, Any, Any]:
        yield from mpi.barrier()
        for _ in range(self.cycles):
            # Down-sweep: restrict fine -> coarse.
            for level in range(self.levels):
                yield from self._level_visit(mpi, level)
            # Coarsest-level solve couples everyone.
            yield from mpi.allreduce(64, 1.0, lambda a, b: a + b)
            # Up-sweep: prolongate coarse -> fine.
            for level in reversed(range(self.levels)):
                yield from self._level_visit(mpi, level)
        norm = yield from mpi.allreduce(8, float(mpi.rank), lambda a, b: a + b)
        return {"norm": norm}
