"""Integration tests for the quantum-synchronized cluster driver."""

import pytest

from repro.core import (
    AdaptiveQuantumPolicy,
    BarrierModel,
    ClusterConfig,
    ClusterSimulator,
    DeadlockError,
    FixedQuantumPolicy,
)
from repro.engine.units import MICROSECOND, MILLISECOND
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import ComputeTime, Recv, Send, SimulatedNode, Sleep
from repro.node.hostmodel import HostModelParams

US = MICROSECOND


def pingpong_apps(rounds, gap=50 * US, nbytes=64):
    def pinger():
        for _ in range(rounds):
            yield Send(dst=1, nbytes=nbytes)
            yield Recv(src=1)
            yield ComputeTime(gap)
        return "ping-done"

    def ponger():
        for _ in range(rounds):
            yield Recv(src=0)
            yield Send(dst=0, nbytes=nbytes)
        return "pong-done"

    return [pinger(), ponger()]


def build(policy, apps=None, seed=7, num_nodes=2, **config_kwargs):
    apps = apps if apps is not None else pingpong_apps(10)
    nodes = [SimulatedNode(i, app) for i, app in enumerate(apps)]
    controller = NetworkController(num_nodes, PAPER_NETWORK(num_nodes))
    config = ClusterConfig(seed=seed, **config_kwargs)
    return ClusterSimulator(nodes, controller, policy, config)


class TestConstruction:
    def test_rejects_single_node(self):
        node = SimulatedNode(0, iter(()))
        controller = NetworkController(2, PAPER_NETWORK(2))
        with pytest.raises(ValueError):
            ClusterSimulator([node], controller, FixedQuantumPolicy(US))

    def test_rejects_mismatched_controller(self):
        apps = pingpong_apps(1)
        nodes = [SimulatedNode(i, app) for i, app in enumerate(apps)]
        controller = NetworkController(4, PAPER_NETWORK(4))
        with pytest.raises(ValueError):
            ClusterSimulator(nodes, controller, FixedQuantumPolicy(US))

    def test_rejects_bad_node_ids(self):
        apps = pingpong_apps(1)
        nodes = [SimulatedNode(1, apps[0]), SimulatedNode(0, apps[1])]
        controller = NetworkController(2, PAPER_NETWORK(2))
        with pytest.raises(ValueError):
            ClusterSimulator(nodes, controller, FixedQuantumPolicy(US))


class TestGroundTruth:
    def test_1us_quantum_has_zero_stragglers(self):
        result = build(FixedQuantumPolicy(US)).run()
        assert result.completed
        assert result.controller_stats.stragglers == 0
        assert result.controller_stats.packets_routed == 20

    def test_ground_truth_independent_of_seed(self):
        """Q <= T makes every delivery exact, so host-speed randomness
        cannot affect the application timeline (the paper's 'deterministic
        ground truth')."""
        makespans = set()
        for seed in (1, 2, 3, 99):
            result = build(FixedQuantumPolicy(US), seed=seed).run()
            makespans.add(result.makespan)
        assert len(makespans) == 1

    def test_zero_stragglers_across_seeds(self):
        for seed in range(5):
            result = build(FixedQuantumPolicy(US), seed=seed).run()
            assert result.controller_stats.stragglers == 0

    def test_host_time_varies_with_seed_even_for_ground_truth(self):
        hosts = {build(FixedQuantumPolicy(US), seed=seed).run().host_time for seed in range(3)}
        assert len(hosts) == 3

    def test_app_results_surface(self):
        result = build(FixedQuantumPolicy(US)).run()
        assert result.app_results == ["ping-done", "pong-done"]
        assert all(t is not None for t in result.app_finish_times)


class TestAccuracySpeedTradeoff:
    def test_larger_quantum_dilates_makespan(self):
        truth = build(FixedQuantumPolicy(US)).run()
        coarse = build(FixedQuantumPolicy(1000 * US)).run()
        assert coarse.makespan > truth.makespan
        assert coarse.controller_stats.stragglers > 0

    def test_larger_quantum_is_faster_in_host_time(self):
        truth = build(FixedQuantumPolicy(US)).run()
        coarse = build(FixedQuantumPolicy(100 * US)).run()
        assert coarse.host_time < truth.host_time
        assert coarse.speedup_vs(truth) > 5

    def test_adaptive_beats_coarse_accuracy(self):
        truth = build(FixedQuantumPolicy(US)).run()
        coarse = build(FixedQuantumPolicy(1000 * US)).run()
        adaptive = build(AdaptiveQuantumPolicy(US, 1000 * US)).run()
        truth_error = abs(adaptive.makespan - truth.makespan) / truth.makespan
        coarse_error = abs(coarse.makespan - truth.makespan) / truth.makespan
        assert truth_error < coarse_error

    def test_adaptive_quantum_stays_in_bounds(self):
        result = build(AdaptiveQuantumPolicy(US, 1000 * US)).run()
        assert result.quantum_stats.min_used >= US
        assert result.quantum_stats.max_used <= 1000 * US

    def test_compute_phase_lets_adaptive_grow(self):
        def quiet_then_chat(peer):
            yield ComputeTime(60 * MILLISECOND)
            yield Send(dst=peer, nbytes=64)
            yield Recv(src=peer)

        apps = [quiet_then_chat(1), quiet_then_chat(0)]
        result = build(AdaptiveQuantumPolicy(US, 1000 * US), apps=apps).run()
        assert result.quantum_stats.max_used == 1000 * US
        assert result.quantum_stats.min_used == US


class TestFastForwardEquivalence:
    def fast_and_slow(self, policy, seed=3):
        compute_apps = lambda: [
            iter(pingpong_apps(3, gap=5 * MILLISECOND)[i]) for i in range(2)
        ]
        fast = build(policy, apps=compute_apps(), seed=seed, fast_forward=True).run()
        slow = build(policy, apps=compute_apps(), seed=seed, fast_forward=False).run()
        return fast, slow

    def test_fixed_policy_identical_results(self):
        fast, slow = self.fast_and_slow(FixedQuantumPolicy(10 * US))
        assert fast.makespan == slow.makespan
        assert fast.sim_time == slow.sim_time
        assert fast.host_time == pytest.approx(slow.host_time, rel=1e-9)
        assert fast.controller_stats.packets_routed == slow.controller_stats.packets_routed
        assert fast.controller_stats.stragglers == slow.controller_stats.stragglers
        assert fast.quantum_stats.quanta == slow.quantum_stats.quanta

    def test_adaptive_policy_identical_results(self):
        fast, slow = self.fast_and_slow(AdaptiveQuantumPolicy(US, 1000 * US))
        assert fast.makespan == slow.makespan
        assert fast.host_time == pytest.approx(slow.host_time, rel=1e-9)
        assert fast.quantum_stats.quanta == slow.quantum_stats.quanta
        assert fast.quantum_stats.total_quantum_time == slow.quantum_stats.total_quantum_time

    def test_fast_forward_actually_engages(self):
        apps = pingpong_apps(2, gap=10 * MILLISECOND)
        result = build(FixedQuantumPolicy(US), apps=apps, seed=1).run()
        # 10ms compute gaps at 1us quanta: tens of thousands of quanta that
        # must have been skipped arithmetically for this to finish quickly.
        assert result.quantum_stats.quanta > 10_000


class TestTermination:
    def test_deadlock_detected(self):
        def waiter():
            yield Recv(src=1)

        def silent():
            yield ComputeTime(10 * US)

        apps = [waiter(), silent()]
        with pytest.raises(DeadlockError, match="node0"):
            build(FixedQuantumPolicy(US), apps=apps).run()

    def test_sim_time_limit_stops_run(self):
        def chatty(peer):
            while True:
                yield Send(dst=peer, nbytes=64)
                yield Sleep(100 * US)

        apps = [chatty(1), chatty(0)]
        result = build(
            FixedQuantumPolicy(10 * US), apps=apps, sim_time_limit=2 * MILLISECOND
        ).run()
        assert not result.completed
        assert result.sim_time >= 2 * MILLISECOND

    def test_in_flight_frames_drain_after_apps_finish(self):
        def sender():
            yield Send(dst=1, nbytes=200_000)  # many paced fragments

        def receiver():
            yield Recv(src=0)

        apps = [sender(), receiver()]
        result = build(FixedQuantumPolicy(US), apps=apps).run()
        assert result.completed
        assert result.node_stats[1].messages_received == 1


class TestTimeline:
    def test_timeline_recorded_when_enabled(self):
        result = build(
            FixedQuantumPolicy(10 * US), timeline_bucket=100 * US
        ).run()
        assert result.timeline is not None
        assert result.timeline.total_host_time == pytest.approx(result.host_time, rel=1e-6)

    def test_timeline_absent_by_default(self):
        result = build(FixedQuantumPolicy(10 * US)).run()
        assert result.timeline is None


class TestHostModelInfluence:
    def test_no_jitter_no_hetero_gives_symmetric_races(self):
        params = HostModelParams(hetero_sigma=0.0, jitter_sigma=0.0)
        result = build(
            FixedQuantumPolicy(100 * US), host_params=params, barrier=BarrierModel.free()
        ).run()
        assert result.completed

    def test_barrier_dominates_small_quanta(self):
        result = build(FixedQuantumPolicy(US)).run()
        assert result.breakdown.barrier_fraction > 0.9

    def test_barrier_negligible_for_huge_quanta(self):
        result = build(FixedQuantumPolicy(1000 * US)).run()
        assert result.breakdown.barrier_fraction < 0.5
