"""Tests for quantum policies (Algorithm 1), barrier model, and stats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AdaptiveQuantumPolicy,
    AimdQuantumPolicy,
    BarrierModel,
    BucketTimeline,
    FixedQuantumPolicy,
    HostCostBreakdown,
    QuantumStats,
    ThresholdAdaptivePolicy,
)
from repro.core.quantum import suggested_dec
from repro.engine.units import MICROSECOND


US = MICROSECOND


class TestFixedPolicy:
    def test_constant(self):
        policy = FixedQuantumPolicy(10 * US)
        q = policy.initial()
        assert q == 10 * US
        assert policy.next(q, 0) == 10 * US
        assert policy.next(q, 500) == 10 * US

    def test_idle_chunk_counts(self):
        policy = FixedQuantumPolicy(10)
        lengths, state = policy.idle_chunk(10.0, span=95, max_windows=100)
        assert list(lengths) == [10] * 9
        assert state == 10.0

    def test_idle_chunk_respects_max_windows(self):
        policy = FixedQuantumPolicy(10)
        lengths, _ = policy.idle_chunk(10.0, span=1000, max_windows=3)
        assert len(lengths) == 3

    def test_describe(self):
        assert FixedQuantumPolicy(US).describe() == "fixed 1.000us"


class TestAdaptivePolicy:
    def make(self, inc=1.03, dec=0.02):
        return AdaptiveQuantumPolicy(US, 1000 * US, inc=inc, dec=dec)

    def test_starts_at_minimum(self):
        assert self.make().initial() == US

    def test_algorithm1_grow_on_silence(self):
        policy = self.make()
        assert policy.next(1000.0, 0) == pytest.approx(1030.0)

    def test_algorithm1_shrink_on_traffic(self):
        policy = self.make()
        q = policy.next(500_000.0, 1)
        assert q == pytest.approx(10_000.0)
        # One more busy quantum floors it (the "speed bump").
        assert policy.next(q, 7) == pytest.approx(US)  # clamped at min

    def test_clamped_at_max(self):
        policy = self.make()
        q = float(1000 * US)
        assert policy.next(q, 0) == 1000 * US

    def test_clamped_at_min(self):
        policy = self.make()
        assert policy.next(float(US), 100) == US

    def test_paper_configurations(self):
        dyn1 = AdaptiveQuantumPolicy.paper_dyn1(US, 1000 * US)
        dyn2 = AdaptiveQuantumPolicy.paper_dyn2(US, 1000 * US)
        assert dyn1.inc == 1.03 and dyn2.inc == 1.05
        assert dyn1.dec == dyn2.dec == 0.02

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveQuantumPolicy(US, 1000 * US, inc=1.0)
        with pytest.raises(ValueError):
            AdaptiveQuantumPolicy(US, 1000 * US, dec=0.0)
        with pytest.raises(ValueError):
            AdaptiveQuantumPolicy(US, 1000 * US, dec=1.0)
        with pytest.raises(ValueError):
            AdaptiveQuantumPolicy(0, 1000)
        with pytest.raises(ValueError):
            AdaptiveQuantumPolicy(1000, 10)

    @given(
        st.floats(min_value=1000, max_value=1_000_000),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_always_in_bounds(self, q, np_count):
        policy = self.make()
        next_q = policy.next(q, np_count)
        assert US <= next_q <= 1000 * US

    @settings(max_examples=50)
    @given(
        st.floats(min_value=1000, max_value=900_000),
        st.integers(min_value=1, max_value=500_000),
        st.integers(min_value=1, max_value=64),
    )
    def test_property_idle_chunk_matches_iteration(self, q0, span, max_windows):
        """The vectorised idle path must equal iterating Algorithm 1."""
        policy = self.make()
        lengths, final_state = policy.idle_chunk(q0, span, max_windows)

        expected = []
        state = q0
        remaining = span
        while len(expected) < max_windows:
            window = policy.window(state)
            if window > remaining:
                break
            expected.append(window)
            remaining -= window
            state = policy.next(state, 0)
        assert list(lengths) == expected
        assert final_state == pytest.approx(state, rel=1e-9)

    def test_idle_chunk_empty_when_window_does_not_fit(self):
        policy = self.make()
        lengths, state = policy.idle_chunk(10_000.0, span=5_000, max_windows=10)
        assert len(lengths) == 0
        assert state == 10_000.0


class TestAblationPolicies:
    def test_aimd_grows_additively(self):
        policy = AimdQuantumPolicy(US, 1000 * US, step=500)
        assert policy.next(5_000.0, 0) == 5_500.0
        assert policy.next(5_000.0, 3) == pytest.approx(US)

    def test_aimd_idle_chunk_matches_iteration(self):
        policy = AimdQuantumPolicy(US, 1000 * US, step=777)
        lengths, final_state = policy.idle_chunk(1_000.0, span=100_000, max_windows=50)
        state, expected, remaining = 1_000.0, [], 100_000
        while len(expected) < 50:
            window = policy.window(state)
            if window > remaining:
                break
            expected.append(window)
            remaining -= window
            state = policy.next(state, 0)
        assert list(lengths) == expected
        assert final_state == pytest.approx(state)

    def test_threshold_tolerates_sparse_traffic(self):
        policy = ThresholdAdaptivePolicy(US, 1000 * US, threshold=2)
        assert policy.next(10_000.0, 2) > 10_000.0
        assert policy.next(10_000.0, 3) < 10_000.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            AimdQuantumPolicy(US, 1000 * US, step=0)
        with pytest.raises(ValueError):
            ThresholdAdaptivePolicy(US, 1000 * US, threshold=0)


class TestSuggestedDec:
    def test_square_root_rule(self):
        assert suggested_dec(1000, 2) == pytest.approx(1 / np.sqrt(1000))

    def test_cube_root_rule(self):
        assert suggested_dec(1000, 3) == pytest.approx(1000 ** (-1 / 3))

    def test_paper_value_is_near_002(self):
        # dec = 0.02 "is very close to 1/sqrt(1000)" (paper Section 5).
        assert suggested_dec(1000, 2) == pytest.approx(0.0316, abs=0.001)

    def test_invalid(self):
        with pytest.raises(ValueError):
            suggested_dec(1)
        with pytest.raises(ValueError):
            suggested_dec(100, 0)


class TestBarrierModel:
    def test_linear_in_nodes(self):
        barrier = BarrierModel(base=1e-3, per_node=1e-4)
        assert barrier.overhead(8) == pytest.approx(1.8e-3)
        assert barrier.overhead(64) - barrier.overhead(8) == pytest.approx(5.6e-3)

    def test_free_barrier(self):
        assert BarrierModel.free().overhead(100) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            BarrierModel(base=-1)
        with pytest.raises(ValueError):
            BarrierModel().overhead(0)


class TestQuantumStats:
    def test_record_scalar(self):
        stats = QuantumStats()
        stats.record(10)
        stats.record(30)
        stats.record(20, count=2)
        assert stats.quanta == 4
        assert stats.total_quantum_time == 80
        assert stats.min_used == 10
        assert stats.max_used == 30
        assert stats.mean_quantum == 20

    def test_record_lengths(self):
        stats = QuantumStats()
        stats.record_lengths(np.array([5, 50, 10], dtype=np.int64))
        stats.record_lengths(np.empty(0, dtype=np.int64))
        assert stats.quanta == 3
        assert stats.min_used == 5
        assert stats.max_used == 50

    def test_empty(self):
        assert QuantumStats().mean_quantum == 0.0


class TestHostCostBreakdown:
    def test_accumulates(self):
        breakdown = HostCostBreakdown()
        breakdown.add(2.0, 1.0)
        breakdown.add(1.0, 0.0)
        assert breakdown.total == 4.0
        assert breakdown.barrier_fraction == 0.25

    def test_empty_fraction(self):
        assert HostCostBreakdown().barrier_fraction == 0.0


class TestBucketTimeline:
    def test_add_accumulates_per_bucket(self):
        timeline = BucketTimeline(100)
        timeline.add(5, 1.0)
        timeline.add(50, 2.0)
        timeline.add(150, 4.0)
        assert timeline.series() == [(0, 3.0), (100, 4.0)]
        assert timeline.total_host_time == 7.0
        assert len(timeline) == 2

    def test_add_span_distributes_proportionally(self):
        timeline = BucketTimeline(100)
        timeline.add_span(50, 250, 4.0)  # 25% / 50% / 25%
        series = dict(timeline.series())
        assert series[0] == pytest.approx(1.0)
        assert series[100] == pytest.approx(2.0)
        assert series[200] == pytest.approx(1.0)

    def test_add_span_degenerate(self):
        timeline = BucketTimeline(100)
        timeline.add_span(70, 70, 3.0)
        assert timeline.series() == [(0, 3.0)]

    def test_speedup_series(self):
        timeline = BucketTimeline(1_000_000)  # 1 ms buckets
        timeline.add(0, 0.002)  # 2 host-seconds per sim-second
        timeline.add(1_000_000, 0.0005)
        series = timeline.speedup_series(baseline_host_per_sim_second=2.0)
        assert series[0] == (0, pytest.approx(1.0))
        assert series[1] == (1_000_000, pytest.approx(4.0))

    def test_invalid(self):
        with pytest.raises(ValueError):
            BucketTimeline(0)
        timeline = BucketTimeline(10)
        with pytest.raises(ValueError):
            timeline.add(0, -1.0)
        with pytest.raises(ValueError):
            timeline.speedup_series(0.0)
