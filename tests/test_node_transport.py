"""Tests for the windowed reliable transport (the guest's TCP)."""

import pytest

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.network import NetworkController, PAPER_NETWORK
from repro.network.packet import FRAME_HEADER_BYTES, Packet
from repro.node import SimulatedNode
from repro.node.nic import NicModel
from repro.node.transport import NodeTransport, TransportConfig
from repro.workloads import StreamWorkload

US = MICROSECOND


def make_transport(node_id=0, **kwargs):
    return NodeTransport(node_id, TransportConfig(**kwargs))


def fake_pace(now, size):
    return now


def data_frame(src, dst, size=8934, fragment=0, last=True, message_id=0):
    return Packet(
        src=src,
        dst=dst,
        size_bytes=size,
        send_time=0,
        message_id=message_id,
        fragment=fragment,
        last_fragment=last,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransportConfig(window_bytes=0)
        with pytest.raises(ValueError):
            TransportConfig(ack_every=0)
        with pytest.raises(ValueError):
            TransportConfig(ack_cpu=-1)
        with pytest.raises(ValueError):
            TransportConfig(delack_timeout=0)


class TestWindowAdmission:
    def test_within_window_all_admitted(self):
        transport = make_transport(window_bytes=65536)
        frames = [data_frame(0, 1, fragment=i, last=(i == 2)) for i in range(3)]
        released = transport.admit(frames, fake_pace, now=100)
        assert len(released) == 3
        assert transport.queued_frames() == 0
        assert transport.total_outstanding() == 3 * 8934

    def test_beyond_window_queued(self):
        transport = make_transport(window_bytes=10_000)
        frames = [data_frame(0, 1, fragment=i, last=(i == 2)) for i in range(3)]
        released = transport.admit(frames, fake_pace, now=0)
        assert len(released) == 1  # one frame fits, the rest queue
        assert transport.queued_frames() == 2
        assert transport.stats.frames_windowed == 2

    def test_oversized_frame_admitted_when_flow_idle(self):
        transport = make_transport(window_bytes=100)
        frames = [data_frame(0, 1, size=5000)]
        assert len(transport.admit(frames, fake_pace, 0)) == 1

    def test_fifo_preserved_across_queueing(self):
        transport = make_transport(window_bytes=10_000)
        frames = [data_frame(0, 1, fragment=i, last=(i == 3)) for i in range(4)]
        transport.admit(frames, fake_pace, 0)
        ack = Packet(src=1, dst=0, size_bytes=66, send_time=0, kind="ack", payload=8934)
        released = transport.on_ack(ack, fake_pace, now=50)
        assert [f.fragment for f in released] == [1]

    def test_flows_are_independent(self):
        transport = make_transport(window_bytes=10_000)
        transport.admit([data_frame(0, 1)], fake_pace, 0)
        released = transport.admit([data_frame(0, 2)], fake_pace, 0)
        assert len(released) == 1  # node 2's flow has its own window

    def test_broadcast_bypasses_window(self):
        transport = make_transport(window_bytes=10)
        frames = [data_frame(0, -1, size=5000), data_frame(0, -1, size=5000)]
        assert len(transport.admit(frames, fake_pace, 0)) == 2

    def test_ack_accounts_stall_time(self):
        transport = make_transport(window_bytes=10_000)
        frames = [data_frame(0, 1, fragment=i, last=(i == 1)) for i in range(2)]
        transport.admit(frames, fake_pace, now=100)
        ack = Packet(src=1, dst=0, size_bytes=66, send_time=0, kind="ack", payload=8934)
        transport.on_ack(ack, fake_pace, now=700)
        assert transport.stats.stall_time == 600


class TestAcking:
    def test_coalesced_ack_every_second_frame(self):
        transport = make_transport(ack_every=2)
        first = transport.ack_for(data_frame(1, 0, fragment=0, last=False), fake_pace, 10)
        assert first is None
        second = transport.ack_for(data_frame(1, 0, fragment=1, last=False), fake_pace, 20)
        assert second is not None
        assert second.kind == "ack"
        assert second.payload == 2 * 8934
        assert second.size_bytes == FRAME_HEADER_BYTES

    def test_last_fragment_always_acked(self):
        transport = make_transport(ack_every=8)
        ack = transport.ack_for(data_frame(1, 0, last=True), fake_pace, 10)
        assert ack is not None

    def test_delayed_ack_timer_protocol(self):
        transport = make_transport(ack_every=4)
        assert transport.ack_for(data_frame(1, 0, last=False), fake_pace, 0) is None
        assert transport.arm_delack(1) is True
        assert transport.arm_delack(1) is False  # already armed
        flushed = transport.flush_ack(1, fake_pace, 500)
        assert flushed is not None
        assert flushed.payload == 8934
        # Timer can be re-armed after a flush.
        assert transport.flush_ack(1, fake_pace, 900) is None  # nothing pending

    def test_prompt_ack_disarms_timer(self):
        transport = make_transport(ack_every=2)
        transport.ack_for(data_frame(1, 0, fragment=0, last=False), fake_pace, 0)
        transport.arm_delack(1)
        transport.ack_for(data_frame(1, 0, fragment=1, last=False), fake_pace, 10)
        # The coalesced ack covered everything; the timer finds nothing.
        assert transport.flush_ack(1, fake_pace, 500) is None


def run_stream(transport_config, policy=None, size=2, seed=9, total_bytes=500_000):
    workload = StreamWorkload(total_bytes=total_bytes, chunk_bytes=100_000)
    nodes = [
        SimulatedNode(i, app, transport=transport_config)
        for i, app in enumerate(workload.build_apps(size))
    ]
    controller = NetworkController(size, PAPER_NETWORK(size))
    sim = ClusterSimulator(
        nodes, controller, policy or FixedQuantumPolicy(US), ClusterConfig(seed=seed)
    )
    return workload, sim.run()


class TestEndToEnd:
    def test_stream_completes_with_windowing(self):
        workload, result = run_stream(TransportConfig(window_bytes=16_384))
        assert result.completed
        assert result.app_results[1]["received"] == 500_000
        assert result.controller_stats.stragglers == 0  # ground truth stays exact

    def test_tiny_window_does_not_deadlock(self):
        """The delayed-ack timer breaks the window/coalescing deadlock."""
        workload, result = run_stream(
            TransportConfig(window_bytes=4_096, ack_every=4)
        )
        assert result.completed

    def test_window_throttles_throughput(self):
        workload, wide = run_stream(TransportConfig(window_bytes=1 << 20))
        workload, narrow = run_stream(TransportConfig(window_bytes=8_192))
        assert workload.metric(narrow) < workload.metric(wide)

    def test_eager_equals_huge_window(self):
        """With a window larger than the transfer, pacing dominates and the
        timing matches the eager model closely."""
        workload, eager = run_stream(None)
        workload, wide = run_stream(TransportConfig(window_bytes=1 << 22, ack_every=2))
        assert workload.metric(wide) == pytest.approx(workload.metric(eager), rel=0.05)

    def test_quantum_dilation_amplified_by_window(self):
        """The paper-gap mechanism: window/RTT throughput collapse under a
        large quantum is far worse than the eager model's distortion."""
        from repro.core import FixedQuantumPolicy as Fixed

        bulk = 2_000_000  # long enough for the window/RTT regime to settle
        workload, eager_truth = run_stream(None, total_bytes=bulk)
        workload, eager_coarse = run_stream(None, policy=Fixed(1000 * US), total_bytes=bulk)
        workload, win_truth = run_stream(
            TransportConfig(window_bytes=16_384), total_bytes=bulk
        )
        workload, win_coarse = run_stream(
            TransportConfig(window_bytes=16_384), policy=Fixed(1000 * US), total_bytes=bulk
        )
        eager_dilation = eager_coarse.makespan / eager_truth.makespan
        windowed_dilation = win_coarse.makespan / win_truth.makespan
        assert windowed_dilation > 2 * eager_dilation

    def test_nic_pacing_respected_for_released_frames(self):
        nic = NicModel(0)
        transport = make_transport(window_bytes=10_000)
        frames = [data_frame(0, 1, fragment=i, last=(i == 1)) for i in range(2)]
        transport.admit(frames, nic.pace, now=0)
        ack = Packet(src=1, dst=0, size_bytes=66, send_time=0, kind="ack", payload=8934)
        released = transport.on_ack(ack, nic.pace, now=100)
        # The released frame starts no earlier than the first frame's
        # serialisation end (the cursor was advanced by admit).
        assert released[0].send_time >= nic.serialization(8934)


class TestMpiOverTransport:
    """The whole stack composed: MPI collectives over the windowed transport."""

    def run_is(self, transport_config, seed=4):
        from repro.workloads import IsWorkload

        workload = IsWorkload(total_keys=2**15, iterations=2, ops_per_key=16)
        nodes = [
            SimulatedNode(i, app, transport=transport_config)
            for i, app in enumerate(workload.build_apps(4))
        ]
        controller = NetworkController(4, PAPER_NETWORK(4))
        sim = ClusterSimulator(
            nodes, controller, FixedQuantumPolicy(US), ClusterConfig(seed=seed)
        )
        return workload, sim.run()

    def test_is_runs_over_windowed_transport(self):
        workload, result = self.run_is(TransportConfig(window_bytes=16_384))
        assert result.completed
        assert result.controller_stats.stragglers == 0  # still ground truth
        checksums = {r["checksum"] for r in result.app_results}
        assert len(checksums) == 1  # collectives still semantically correct

    def test_ack_traffic_is_visible(self):
        workload, eager = self.run_is(None)
        workload, windowed = self.run_is(TransportConfig(window_bytes=16_384))
        assert (
            windowed.controller_stats.packets_routed
            > eager.controller_stats.packets_routed
        )
