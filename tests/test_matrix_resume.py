"""Resumable matrices: journal semantics, ``--resume``, cache-key purity."""

import dataclasses
import json

import pytest

from repro.checkpoint import MatrixJournal
from repro.core import FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.harness.configs import PolicySpec
from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import RunnerSettings
from repro.workloads import PingPongWorkload

US = MICROSECOND

SPECS = [
    PolicySpec("Q=10us", lambda: FixedQuantumPolicy(10 * US)),
    PolicySpec("Q=20us", lambda: FixedQuantumPolicy(20 * US)),
]


class TestMatrixJournal:
    def test_done_rows_round_trip(self, tmp_path):
        journal = MatrixJournal(tmp_path / "m.jsonl")
        journal.start("a")
        journal.done("a", {"metric": 1.5})
        journal.start("b")  # started, never finished
        journal.close()
        assert journal.completed_rows() == {"a": {"metric": 1.5}}

    def test_later_entries_win(self, tmp_path):
        journal = MatrixJournal(tmp_path / "m.jsonl")
        journal.done("a", {"metric": 1.0})
        journal.failed("a", "worker died")
        journal.done("a", {"metric": 2.0})
        journal.close()
        assert journal.completed_rows() == {"a": {"metric": 2.0}}

    def test_torn_tail_and_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "m.jsonl"
        journal = MatrixJournal(path)
        journal.done("a", {"metric": 1.0})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"event": "done", "key": 7, "row": {}}) + "\n")
            # The torn tail of a write killed mid-line: no newline, cut off.
            handle.write('{"event":"done","key":"b","row":{"met')
        assert journal.completed_rows() == {"a": {"metric": 1.0}}

    def test_missing_file_reads_as_empty(self, tmp_path):
        assert MatrixJournal(tmp_path / "never-written.jsonl").completed_rows() == {}


def run_many_counter(runner, monkeypatch):
    """Count the requests each ``run_many`` batch actually computes."""
    counts = []
    original = runner.run_many

    def counting(requests):
        counts.append(len(requests))
        return original(requests)

    monkeypatch.setattr(runner, "run_many", counting)
    return counts


class TestRunMatrixResume:
    def test_full_resume_recomputes_nothing(self, tmp_path, monkeypatch):
        journal = tmp_path / "m.jsonl"
        workload = PingPongWorkload()
        first = ExperimentRunner(seed=3).run_matrix(
            workload, (2,), SPECS, journal=str(journal)
        )

        resumed_runner = ExperimentRunner(seed=3)
        counts = run_many_counter(resumed_runner, monkeypatch)
        resumed = resumed_runner.run_matrix(
            workload, (2,), SPECS, journal=str(journal), resume=True
        )
        # Every cell came from the journal: one empty batch, zero runs.
        assert counts == [0]
        assert [dataclasses.asdict(row) for row in resumed] == [
            dataclasses.asdict(row) for row in first
        ]

    def test_partial_resume_recomputes_only_missing_cells(
        self, tmp_path, monkeypatch
    ):
        journal = tmp_path / "m.jsonl"
        workload = PingPongWorkload()
        reference = ExperimentRunner(seed=3).run_matrix(workload, (2,), SPECS)

        # Journal only the first spec's cell, as if the run died after it.
        log = MatrixJournal(journal)
        log.done(
            f"{workload.name}/n2/{SPECS[0].label}",
            dataclasses.asdict(reference[0]),
        )
        log.close()

        resumed_runner = ExperimentRunner(seed=3)
        counts = run_many_counter(resumed_runner, monkeypatch)
        resumed = resumed_runner.run_matrix(
            workload, (2,), SPECS, journal=str(journal), resume=True
        )
        # One batch: the missing cell plus its injected ground truth.
        assert counts == [2]
        assert [dataclasses.asdict(row) for row in resumed] == [
            dataclasses.asdict(row) for row in reference
        ]

    def test_without_resume_the_journal_only_records(self, tmp_path, monkeypatch):
        journal = tmp_path / "m.jsonl"
        workload = PingPongWorkload()
        ExperimentRunner(seed=3).run_matrix(workload, (2,), SPECS, journal=str(journal))
        rerun_runner = ExperimentRunner(seed=3)
        counts = run_many_counter(rerun_runner, monkeypatch)
        rerun_runner.run_matrix(workload, (2,), SPECS, journal=str(journal))
        assert counts == [3]  # ground truth + both cells, recomputed

    def test_batch_failure_marks_started_cells_failed(self, tmp_path, monkeypatch):
        journal = tmp_path / "m.jsonl"
        workload = PingPongWorkload()
        runner = ExperimentRunner(seed=3)
        monkeypatch.setattr(
            runner,
            "run_many",
            lambda requests: (_ for _ in ()).throw(RuntimeError("pool died")),
        )
        with pytest.raises(RuntimeError):
            runner.run_matrix(workload, (2,), SPECS, journal=str(journal))
        events = [
            json.loads(line)["event"]
            for line in journal.read_text().splitlines()
        ]
        assert events.count("start") == 2
        assert events.count("failed") == 2
        assert MatrixJournal(journal).completed_rows() == {}

    def test_checkpoint_dir_derives_a_journal_automatically(self, tmp_path):
        runner = ExperimentRunner(seed=3, checkpoint_dir=str(tmp_path))
        workload = PingPongWorkload()
        runner.run_matrix(workload, (2,), SPECS)
        derived = tmp_path / f"{workload.name}.matrix.jsonl"
        assert derived.exists()
        assert len(MatrixJournal(derived).completed_rows()) == 2


class TestCacheKeyPurity:
    """The robustness knobs must never reach a cache key: a checkpointed,
    supervised, retried run is bit-identical to a plain one, so both must
    hit the same cache entries — and fault-free keys must stay
    byte-identical to what pre-checkpoint harness versions computed."""

    def test_robustness_knobs_never_enter_key_fragment(self):
        plain = RunnerSettings()
        knobbed = RunnerSettings(
            checkpoint_dir="/tmp/ckpt",
            checkpoint_every_quanta=4,
            resume=True,
            run_timeout=3600.0,
            stall_timeout=300.0,
            retries=5,
        )
        assert knobbed.key_fragment(8) == plain.key_fragment(8)

    def test_key_fragment_is_byte_identical_across_knobs(self):
        plain = json.dumps(RunnerSettings().key_fragment(8), sort_keys=True)
        knobbed = json.dumps(
            RunnerSettings(
                checkpoint_dir="/tmp/ckpt", resume=True, retries=2
            ).key_fragment(8),
            sort_keys=True,
        )
        assert knobbed == plain
