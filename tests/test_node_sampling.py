"""Tests for the sampling schedule and its host-model integration."""

import numpy as np
import pytest

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.engine import RngStreams
from repro.engine.units import MICROSECOND, MILLISECOND
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import HostModelParams, SimulatedNode
from repro.node.hostmodel import BUSY, IDLE
from repro.node.sampling import SampledHostExecutionModel, SamplingSchedule
from repro.workloads import EpWorkload

US = MICROSECOND


def make_model(schedule, node_id=0, jitter=0.0):
    params = HostModelParams(jitter_sigma=jitter, hetero_sigma=0.0)
    return SampledHostExecutionModel(node_id, params, RngStreams(1), schedule)


class TestSamplingSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingSchedule(period=1)
        with pytest.raises(ValueError):
            SamplingSchedule(detail_fraction=0.0)
        with pytest.raises(ValueError):
            SamplingSchedule(detail_fraction=1.5)
        with pytest.raises(ValueError):
            SamplingSchedule(functional_slowdown=0)
        with pytest.raises(ValueError):
            SamplingSchedule(phase_stagger=-1)

    def test_detail_window(self):
        schedule = SamplingSchedule(period=1000, detail_fraction=0.25)
        assert schedule.detail_window == 250

    def test_mean_busy_slowdown(self):
        schedule = SamplingSchedule(detail_fraction=0.2, functional_slowdown=3.0)
        assert schedule.mean_busy_slowdown(20.0) == pytest.approx(0.2 * 20 + 0.8 * 3)


class TestSampledHostModel:
    def test_detailed_vs_functional_windows(self):
        schedule = SamplingSchedule(
            period=1000, detail_fraction=0.3, functional_slowdown=2.0
        )
        model = make_model(schedule)
        assert model.busy_base_at(0) == 20.0
        assert model.busy_base_at(299) == 20.0
        assert model.busy_base_at(300) == 2.0
        assert model.busy_base_at(999) == 2.0
        assert model.busy_base_at(1000) == 20.0  # next period

    def test_idle_unaffected(self):
        schedule = SamplingSchedule(period=1000, detail_fraction=0.3)
        model = make_model(schedule)
        busy_det, idle = model.slowdown_pair(0)
        busy_fun, idle2 = model.slowdown_pair(500)
        assert busy_det == 20.0 and busy_fun == schedule.functional_slowdown
        assert idle == idle2 == 1.0

    def test_phase_stagger_offsets_nodes(self):
        schedule = SamplingSchedule(period=1000, detail_fraction=0.3, phase_stagger=500)
        node0 = make_model(schedule, node_id=0)
        node1 = make_model(schedule, node_id=1)
        assert node0.busy_base_at(0) != node1.busy_base_at(0)

    def test_vectorised_matches_scalar(self):
        schedule = SamplingSchedule(period=1000, detail_fraction=0.5)
        model = make_model(schedule)
        times = np.array([0, 250, 499, 500, 750, 1000, 1250])
        vector = model.busy_bases_at(times)
        scalar = [model.busy_base_at(int(t)) for t in times]
        assert list(vector) == scalar

    def test_slowdowns_use_times_for_busy(self):
        schedule = SamplingSchedule(period=1000, detail_fraction=0.5, functional_slowdown=2.0)
        model = make_model(schedule)
        times = np.array([0, 600])
        draws = model.slowdowns(2, BUSY, times)
        assert list(draws) == [20.0, 2.0]
        idle_draws = model.slowdowns(2, IDLE, times)
        assert list(idle_draws) == [1.0, 1.0]


def run_ep(sampling=None, seed=3, quantum=100 * US):
    workload = EpWorkload(total_ops=2e8)
    nodes = [SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(4))]
    controller = NetworkController(4, PAPER_NETWORK(4))
    config = ClusterConfig(seed=seed, sampling=sampling)
    sim = ClusterSimulator(nodes, controller, FixedQuantumPolicy(quantum), config)
    return sim.run()


class TestClusterIntegration:
    def test_sampling_accelerates_busy_simulation(self):
        plain = run_ep()
        sampled = run_ep(SamplingSchedule(period=5 * MILLISECOND, detail_fraction=0.2))
        assert sampled.host_time < plain.host_time

    def test_ground_truth_timing_unchanged_by_sampling(self):
        # At Q <= T every delivery is exact, so sampling changes how fast
        # we simulate, not what we simulate: identical target timeline.
        plain = run_ep(quantum=US)
        sampled = run_ep(
            SamplingSchedule(period=5 * MILLISECOND, detail_fraction=0.2), quantum=US
        )
        assert sampled.makespan == plain.makespan
        assert sampled.host_time < plain.host_time

    def test_speedup_bounded_by_schedule(self):
        schedule = SamplingSchedule(period=5 * MILLISECOND, detail_fraction=0.2,
                                    functional_slowdown=3.0)
        plain = run_ep()
        sampled = run_ep(schedule)
        gain = plain.host_time / sampled.host_time
        ceiling = 20.0 / schedule.mean_busy_slowdown(20.0)
        assert 1.0 < gain < ceiling * 1.2
