"""Tests for the simlint determinism lint: rules, baseline, CLI, JSON."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import simlint
from repro.analysis.baseline import (
    apply_baseline,
    fingerprint_findings,
    load_baseline,
    parse_baseline,
    write_baseline,
)
from repro.analysis.rules import RULES, lint_source, zone_of

# Virtual paths used to exercise zone scoping without touching the disk.
CORE = "src/repro/core/module.py"
NETWORK = "src/repro/network/module.py"
HARNESS = "src/repro/harness/module.py"
RNG = "src/repro/engine/rng.py"
UNITS = "src/repro/engine/units.py"
BENCH = "benchmarks/module.py"

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(source: str, path: str = CORE) -> list:
    return lint_source(textwrap.dedent(source), path)


def rules_of(findings: list) -> list[str]:
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------- #
# Zone classification
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    ("path", "zone"),
    [
        (CORE, "sim-core"),
        (NETWORK, "sim-core"),
        ("src/repro/engine/events.py", "sim-core"),
        ("src/repro/mpi/api.py", "sim-core"),
        ("src/repro/workloads/nas.py", "sim-core"),
        (HARNESS, "harness"),
        ("src/repro/analysis/rules.py", "analysis"),
        ("tests/test_x.py", "tests"),
        (BENCH, "benchmarks"),
        ("examples/quickstart.py", "examples"),
        ("setup.py", "other"),
    ],
)
def test_zone_of(path: str, zone: str) -> None:
    assert zone_of(path) == zone


# --------------------------------------------------------------------- #
# SIM000: syntax errors are findings, not crashes
# --------------------------------------------------------------------- #


def test_sim000_syntax_error() -> None:
    findings = lint("def broken(:\n", CORE)
    assert rules_of(findings) == ["SIM000"]
    assert "syntax error" in findings[0].message


# --------------------------------------------------------------------- #
# SIM001: wall-clock access in the sim core
# --------------------------------------------------------------------- #


def test_sim001_time_module_call() -> None:
    source = """
        import time

        def stamp():
            return time.time()
    """
    assert rules_of(lint(source, CORE)) == ["SIM001"]


def test_sim001_from_import_alias() -> None:
    source = """
        from time import perf_counter as tick

        def stamp():
            return tick()
    """
    assert rules_of(lint(source, CORE)) == ["SIM001"]


def test_sim001_datetime_now() -> None:
    source = """
        import datetime

        def when():
            return datetime.datetime.now()
    """
    assert rules_of(lint(source, CORE)) == ["SIM001"]


def test_sim001_allowed_in_harness_and_benchmarks() -> None:
    source = """
        import time

        def stamp():
            return time.perf_counter()
    """
    assert lint(source, HARNESS) == []
    assert lint(source, BENCH) == []


def test_sim001_unrelated_time_attribute_ok() -> None:
    # An object's own .time() method is not the time module.
    source = """
        def f(record):
            return record.time()
    """
    assert lint(source, CORE) == []


# --------------------------------------------------------------------- #
# SIM002: unseeded randomness outside engine/rng.py
# --------------------------------------------------------------------- #


def test_sim002_stdlib_random() -> None:
    source = """
        import random

        def draw():
            return random.random() + random.randint(0, 5)
    """
    assert rules_of(lint(source, CORE)) == ["SIM002", "SIM002"]


def test_sim002_numpy_module_level_draw() -> None:
    source = """
        import numpy as np

        def draw():
            return np.random.randint(5)
    """
    assert rules_of(lint(source, CORE)) == ["SIM002"]


def test_sim002_default_rng_without_seed() -> None:
    source = """
        from numpy.random import default_rng

        def make():
            return default_rng()
    """
    assert rules_of(lint(source, CORE)) == ["SIM002"]


def test_sim002_seeded_constructors_ok() -> None:
    source = """
        import numpy as np

        def make(seed):
            gen = np.random.default_rng(seed)
            seq = np.random.PCG64(np.random.SeedSequence(seed))
            return seq, gen
    """
    assert lint(source, CORE) == []


def test_sim002_seedless_stdlib_random_instance() -> None:
    source = """
        import random

        def make():
            return random.Random()
    """
    assert rules_of(lint(source, CORE)) == ["SIM002"]


def test_sim002_seeded_stdlib_random_instance_ok() -> None:
    source = """
        import random

        def make(seed):
            return random.Random(seed)
    """
    assert lint(source, CORE) == []


def test_sim002_direct_generator_construction() -> None:
    # Even seeded, Generator/RandomState must be built inside engine/rng.py
    # so every stream is named and attributable.
    source = """
        import numpy as np

        def make(seed):
            return np.random.Generator(np.random.PCG64(seed))
    """
    assert rules_of(lint(source, CORE)) == ["SIM002"]
    assert rules_of(lint(source, HARNESS)) == ["SIM002"]
    assert lint(source, RNG) == []


def test_sim002_direct_randomstate_construction() -> None:
    source = """
        import numpy as np

        def make(seed):
            return np.random.RandomState(seed)
    """
    assert rules_of(lint(source, CORE)) == ["SIM002"]
    assert lint(source, RNG) == []


def test_sim002_applies_to_harness_but_not_rng_module() -> None:
    source = """
        import random

        def draw():
            return random.random()
    """
    assert rules_of(lint(source, HARNESS)) == ["SIM002"]
    assert lint(source, RNG) == []


# --------------------------------------------------------------------- #
# SIM003: iteration-order hazards
# --------------------------------------------------------------------- #


def test_sim003_set_literal_iteration() -> None:
    source = """
        def f():
            for item in {"a", "b"}:
                print(item)
    """
    assert rules_of(lint(source, CORE)) == ["SIM003"]


def test_sim003_tracked_set_binding() -> None:
    source = """
        def f(names):
            pending = set(names)
            for name in pending:
                print(name)
    """
    assert rules_of(lint(source, CORE)) == ["SIM003"]


def test_sim003_list_built_from_set() -> None:
    source = """
        def f(names):
            return [n for n in set(names)]
    """
    assert rules_of(lint(source, CORE)) == ["SIM003"]


def test_sim003_dict_view_into_order_sink() -> None:
    source = """
        import heapq

        def f(queues, heap):
            for value in queues.values():
                heapq.heappush(heap, value)
    """
    assert rules_of(lint(source, CORE)) == ["SIM003"]


def test_sim003_sorted_iteration_ok() -> None:
    source = """
        import heapq

        def f(names, queues, heap):
            for name in sorted(set(names)):
                print(name)
            for key in sorted(queues):
                heapq.heappush(heap, queues[key])
    """
    assert lint(source, CORE) == []


def test_sim003_dict_view_without_sink_ok() -> None:
    source = """
        def f(counters):
            return sum(v for v in counters.values())
    """
    assert lint(source, CORE) == []


def test_sim003_not_applied_outside_core() -> None:
    source = """
        def f():
            for item in {"a", "b"}:
                print(item)
    """
    assert lint(source, HARNESS) == []


def test_sim003_rebound_name_clears_tracking() -> None:
    source = """
        def f(names):
            pending = set(names)
            pending = sorted(pending)
            for name in pending:
                print(name)
    """
    assert lint(source, CORE) == []


# --------------------------------------------------------------------- #
# SIM004: float/SimTime mixing
# --------------------------------------------------------------------- #


def test_sim004_float_literal_times_simtime() -> None:
    source = """
        def f(now):
            return now + 1.5
    """
    assert rules_of(lint(source, CORE)) == ["SIM004"]


def test_sim004_suffix_names() -> None:
    source = """
        def f(packet):
            return 0.5 * packet.send_time
    """
    assert rules_of(lint(source, CORE)) == ["SIM004"]


def test_sim004_quantizer_sanctions_the_expression() -> None:
    source = """
        def f(now):
            return round(now * 1.5)
    """
    assert lint(source, CORE) == []


def test_sim004_host_domain_names_ok() -> None:
    source = """
        def f(host_time, slowdown):
            return host_time * 2.0 + slowdown * 0.5
    """
    assert lint(source, CORE) == []


def test_sim004_exempt_in_units_and_outside_core() -> None:
    source = """
        def f(now):
            return now * 1.5
    """
    assert lint(source, UNITS) == []
    assert lint(source, HARNESS) == []


def test_sim004_true_division_ok() -> None:
    # True division always yields a float; the hazard is storing it back,
    # which the integer ops (+ - * // %) capture.
    source = """
        def f(sim_time):
            return sim_time / 2.0
    """
    assert lint(source, CORE) == []


# --------------------------------------------------------------------- #
# SIM005: mutable default arguments
# --------------------------------------------------------------------- #


def test_sim005_list_and_dict_defaults() -> None:
    source = """
        def f(acc=[], table={}):
            return acc, table
    """
    assert rules_of(lint(source, CORE)) == ["SIM005", "SIM005"]


def test_sim005_constructor_default() -> None:
    source = """
        def f(layout=dict()):
            return layout
    """
    assert rules_of(lint(source, CORE)) == ["SIM005"]


def test_sim005_kwonly_default() -> None:
    source = """
        def f(*, acc=[]):
            return acc
    """
    assert rules_of(lint(source, CORE)) == ["SIM005"]


def test_sim005_applies_in_every_zone() -> None:
    source = """
        def f(acc=[]):
            return acc
    """
    assert rules_of(lint(source, HARNESS)) == ["SIM005"]


def test_sim005_none_and_immutable_ok() -> None:
    source = """
        def f(acc=None, name="x", count=0, pair=(1, 2)):
            return acc, name, count, pair
    """
    assert lint(source, CORE) == []


# --------------------------------------------------------------------- #
# SIM006: broad exception handlers
# --------------------------------------------------------------------- #


def test_sim006_bare_and_broad_except() -> None:
    source = """
        def f():
            try:
                work()
            except Exception:
                pass
            try:
                work()
            except:
                pass
    """
    assert rules_of(lint(source, CORE)) == ["SIM006", "SIM006"]


def test_sim006_reraise_allowed() -> None:
    source = """
        def f():
            try:
                work()
            except BaseException as err:
                raise RuntimeError("wrapped") from err
    """
    assert lint(source, CORE) == []


def test_sim006_specific_exception_ok() -> None:
    source = """
        def f():
            try:
                work()
            except ValueError:
                pass
    """
    assert lint(source, CORE) == []


def test_sim006_not_applied_outside_core() -> None:
    source = """
        def f():
            try:
                work()
            except Exception:
                pass
    """
    assert lint(source, HARNESS) == []


# --------------------------------------------------------------------- #
# Baseline: fingerprints, round-trip, staleness
# --------------------------------------------------------------------- #

BAD_CORE_SOURCE = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def test_fingerprint_is_line_number_independent() -> None:
    shifted = "\n\n\n" + BAD_CORE_SOURCE
    original = fingerprint_findings(lint_source(BAD_CORE_SOURCE, CORE))
    moved = fingerprint_findings(lint_source(shifted, CORE))
    assert [d for _, d in original] == [d for _, d in moved]
    assert original[0][0].line != moved[0][0].line


def test_fingerprint_distinguishes_repeated_lines() -> None:
    source = """
        import time

        def stamp():
            return time.time()

        def stamp2():
            return time.time()
    """
    pairs = fingerprint_findings(lint(source, CORE))
    assert len(pairs) == 2
    assert pairs[0][1] != pairs[1][1]


def test_baseline_round_trip(tmp_path: Path) -> None:
    findings = lint_source(BAD_CORE_SOURCE, CORE)
    assert findings
    path = tmp_path / "simlint.baseline"
    count = write_baseline(path, findings, comment="known")
    assert count == len(findings)

    entries = load_baseline(path)
    active, suppressed, stale = apply_baseline(findings, entries)
    assert active == []
    assert suppressed == findings
    assert stale == []


def test_baseline_goes_stale_when_code_changes(tmp_path: Path) -> None:
    path = tmp_path / "simlint.baseline"
    write_baseline(path, lint_source(BAD_CORE_SOURCE, CORE), comment="known")
    fixed = lint_source("def stamp():\n    return 0\n", CORE)
    active, suppressed, stale = apply_baseline(fixed, load_baseline(path))
    assert active == []
    assert suppressed == []
    assert len(stale) == 1


def test_write_baseline_is_byte_deterministic(tmp_path: Path) -> None:
    """Satellite (b): the baseline file is a stable artifact.

    Two writes of the same finding set — even presented in different
    orders — must produce byte-identical files, so a regenerated
    baseline never churns in review.
    """
    source = """
        import time
        import random

        def stamp():
            return time.time()

        def draw():
            return random.random()
    """
    findings = lint(source, CORE)
    assert len(findings) >= 2

    first = tmp_path / "first.baseline"
    second = tmp_path / "second.baseline"
    write_baseline(first, findings, comment="known")
    write_baseline(second, list(reversed(findings)), comment="known")
    assert first.read_bytes() == second.read_bytes()

    # Entries are sorted by (rule, path, fingerprint).
    entries = load_baseline(first)
    assert entries == sorted(
        entries, key=lambda e: (e.rule, e.path, e.fingerprint)
    )


def test_baseline_parse_rejects_malformed_lines() -> None:
    with pytest.raises(ValueError, match="expected"):
        parse_baseline("SIM001 only-two-fields\n")


def test_baseline_comments_and_blanks_ignored() -> None:
    text = "# header\n\nSIM001 src/x.py abcdef012345  # why\n"
    entries = parse_baseline(text)
    assert len(entries) == 1
    assert entries[0].comment == "why"


# --------------------------------------------------------------------- #
# CLI: exit codes, JSON schema, baseline flags
# --------------------------------------------------------------------- #


def make_tree(tmp_path: Path, source: str) -> Path:
    module = tmp_path / "src" / "repro" / "core" / "bad.py"
    module.parent.mkdir(parents=True)
    module.write_text(textwrap.dedent(source))
    return tmp_path / "src"


def baseline_args(tmp_path: Path) -> list[str]:
    """Isolate CLI tests from the repository's checked-in baseline."""
    return ["--baseline", str(tmp_path / "isolated.baseline")]


def test_cli_exit_zero_on_clean_tree(tmp_path: Path, capsys) -> None:
    root = make_tree(tmp_path, "def f():\n    return 1\n")
    assert simlint.main([*baseline_args(tmp_path), str(root)]) == 0
    assert "0 finding(s)" in capsys.readouterr().err


def test_cli_exit_one_on_findings(tmp_path: Path, capsys) -> None:
    root = make_tree(tmp_path, BAD_CORE_SOURCE)
    assert simlint.main([*baseline_args(tmp_path), str(root)]) == 1
    captured = capsys.readouterr()
    assert "SIM001" in captured.out


def test_cli_exit_two_on_unknown_rule_or_missing_path(tmp_path: Path, capsys) -> None:
    assert simlint.main(["--rules", "SIM999", str(tmp_path)]) == 2
    assert simlint.main([str(tmp_path / "nope")]) == 2
    capsys.readouterr()


def test_cli_rule_filter(tmp_path: Path, capsys) -> None:
    root = make_tree(tmp_path, BAD_CORE_SOURCE)
    assert simlint.main([*baseline_args(tmp_path), "--rules", "SIM005", str(root)]) == 0
    assert simlint.main([*baseline_args(tmp_path), "--rules", "sim001", str(root)]) == 1
    capsys.readouterr()


def test_cli_json_schema(tmp_path: Path, capsys) -> None:
    root = make_tree(tmp_path, BAD_CORE_SOURCE)
    assert simlint.main([*baseline_args(tmp_path), "--format", "json", str(root)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == simlint.JSON_SCHEMA_VERSION
    assert report["rules"] == RULES
    assert report["counts"] == {"active": 1, "suppressed": 0, "stale_baseline": 0}
    (finding,) = report["findings"]
    assert set(finding) == {
        "rule", "path", "line", "col", "message", "snippet", "zone",
        "fingerprint", "suppressed", "chain",
    }
    assert finding["rule"] == "SIM001"
    assert finding["zone"] == "sim-core"
    assert finding["suppressed"] is False
    assert report["stale_baseline"] == []


def test_cli_write_baseline_then_suppress(tmp_path: Path, capsys) -> None:
    root = make_tree(tmp_path, BAD_CORE_SOURCE)
    baseline = tmp_path / "simlint.baseline"
    assert simlint.main(["--write-baseline", "--baseline", str(baseline), str(root)]) == 0
    assert baseline.exists()
    assert simlint.main(["--baseline", str(baseline), str(root)]) == 0
    report_run = simlint.main(["--format", "json", "--baseline", str(baseline), str(root)])
    assert report_run == 0
    capsys.readouterr()


def test_cli_strict_flags_stale_entries(tmp_path: Path, capsys) -> None:
    root = make_tree(tmp_path, BAD_CORE_SOURCE)
    baseline = tmp_path / "simlint.baseline"
    simlint.main(["--write-baseline", "--baseline", str(baseline), str(root)])
    # Fix the finding: the baseline entry is now stale.
    next(root.rglob("bad.py")).write_text("def f():\n    return 1\n")
    assert simlint.main(["--baseline", str(baseline), str(root)]) == 0
    assert simlint.main(["--strict", "--baseline", str(baseline), str(root)]) == 1
    capsys.readouterr()


def test_cli_list_rules(capsys) -> None:
    assert simlint.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


# --------------------------------------------------------------------- #
# The repository itself must lint clean (the CI gate).
# --------------------------------------------------------------------- #


def test_repository_lints_clean(capsys) -> None:
    code = simlint.main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
    captured = capsys.readouterr()
    assert code == 0, f"simlint found new violations:\n{captured.out}"
