"""The whole-program determinism dataflow (SIM010-SIM014).

Covers the taint model (sources, return propagation, parameter sinks,
cross-module resolution), chain reporting, the zone gating that keeps
tests/benchmarks out of the sink rules, and — the acceptance gate — that
a deliberately injected wall-clock -> ``key_fragment`` flow in the *real*
``repro/harness/parallel.py`` is caught.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import simlint
from repro.analysis.rules import Finding

REPO_ROOT = Path(__file__).parent.parent


def lint_tree(files: dict[str, str], tmp_path: Path, monkeypatch) -> list[Finding]:
    """Materialize *files* (path -> source) and run the full analyzer."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    monkeypatch.chdir(tmp_path)
    return simlint.run_lint(["src"], use_cache=False)


def rules_of(findings: list[Finding]) -> list[str]:
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------- #
# Source -> sink within one module
# --------------------------------------------------------------------- #


def test_wall_clock_into_schedule(tmp_path, monkeypatch) -> None:
    findings = lint_tree(
        {
            "src/repro/core/leak.py": """
                import time

                def _stamp():
                    return time.time()

                def kick(engine):
                    engine.schedule(_stamp(), None)
            """
        },
        tmp_path,
        monkeypatch,
    )
    assert "SIM010" in rules_of(findings)
    (sim010,) = [f for f in findings if f.rule == "SIM010"]
    assert sim010.line == 8
    assert "time.time" in sim010.message


def test_untainted_schedule_is_clean(tmp_path, monkeypatch) -> None:
    findings = lint_tree(
        {
            "src/repro/core/ok.py": """
                def kick(engine, due):
                    engine.schedule(due + 5, None)
            """
        },
        tmp_path,
        monkeypatch,
    )
    assert findings == []


def test_chain_reports_every_hop(tmp_path, monkeypatch) -> None:
    findings = lint_tree(
        {
            "src/repro/harness/keys.py": """
                import time

                def _inner():
                    return time.monotonic()

                def _outer():
                    return _inner()

                class Settings:
                    def key_fragment(self, size):
                        return {"size": size, "stamp": _outer()}
            """
        },
        tmp_path,
        monkeypatch,
    )
    (finding,) = findings
    assert finding.rule == "SIM013"
    # Chain: source read -> laundering helper -> key_fragment return.
    path = "src/repro/harness/keys.py"
    assert finding.chain == (
        (path, 5, "time.monotonic read here"),
        (path, 8, "tainted value returned by _inner()"),
        (path, 11, "enters the cache key via key_fragment()"),
    )


# --------------------------------------------------------------------- #
# Parameter sinks: taint forwarded into a function that sinks it
# --------------------------------------------------------------------- #


def test_taint_forwarded_through_parameter(tmp_path, monkeypatch) -> None:
    findings = lint_tree(
        {
            "src/repro/core/fwd.py": """
                import time

                def _push(engine, when):
                    engine.schedule(when, None)

                def kick(engine):
                    _push(engine, time.perf_counter())
            """
        },
        tmp_path,
        monkeypatch,
    )
    sim010 = [f for f in findings if f.rule == "SIM010"]
    assert sim010, rules_of(findings)
    assert sim010[0].line == 8  # reported at the forwarding call site
    assert any("_push" in note for _, _, note in sim010[0].chain)


def test_taint_forwarded_by_keyword(tmp_path, monkeypatch) -> None:
    findings = lint_tree(
        {
            "src/repro/core/kw.py": """
                import random

                def _push(engine, when):
                    engine.schedule(when, None)

                def kick(engine):
                    _push(engine, when=random.random())
            """
        },
        tmp_path,
        monkeypatch,
    )
    assert "SIM010" in rules_of(findings)


# --------------------------------------------------------------------- #
# Cross-module propagation
# --------------------------------------------------------------------- #


def test_cross_module_laundering(tmp_path, monkeypatch) -> None:
    findings = lint_tree(
        {
            "src/repro/harness/clockutil.py": """
                import time

                def host_stamp():
                    return time.time()
            """,
            "src/repro/harness/keys.py": """
                from repro.harness.clockutil import host_stamp

                class Settings:
                    def key_fragment(self, size):
                        return {"size": size, "at": host_stamp()}
            """,
        },
        tmp_path,
        monkeypatch,
    )
    (finding,) = findings
    assert finding.rule == "SIM013"
    chain_paths = [path for path, _, _ in finding.chain]
    assert "src/repro/harness/clockutil.py" in chain_paths
    assert "src/repro/harness/keys.py" in chain_paths


# --------------------------------------------------------------------- #
# Sources beyond the wall clock
# --------------------------------------------------------------------- #


def test_ambient_host_sources(tmp_path, monkeypatch) -> None:
    findings = lint_tree(
        {
            "src/repro/core/amb.py": """
                import os

                def width():
                    return os.cpu_count() or 1
            """
        },
        tmp_path,
        monkeypatch,
    )
    assert rules_of(findings) == ["SIM014"]


def test_hash_id_into_trace_event(tmp_path, monkeypatch) -> None:
    findings = lint_tree(
        {
            "src/repro/obs/leak.py": """
                from repro.obs.events import PacketTrace

                def emit(sink, packet):
                    sink.append(PacketTrace(packet_id=id(packet)))
            """
        },
        tmp_path,
        monkeypatch,
    )
    assert rules_of(findings) == ["SIM012"]


def test_set_order_source_into_schedule(tmp_path, monkeypatch) -> None:
    findings = lint_tree(
        {
            "src/repro/core/setleak.py": """
                def kick(engine, nodes):
                    order = list(set(nodes))
                    engine.schedule_many(order)
            """
        },
        tmp_path,
        monkeypatch,
    )
    assert "SIM010" in rules_of(findings)


# --------------------------------------------------------------------- #
# Zone gating: who is held to which contract
# --------------------------------------------------------------------- #


def test_tests_zone_not_flagged(tmp_path, monkeypatch) -> None:
    target = tmp_path / "tests" / "helper_leak.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            import time

            def _stamp():
                return time.time()

            def kick(engine):
                engine.schedule(_stamp(), None)
            """
        )
    )
    monkeypatch.chdir(tmp_path)
    findings = simlint.run_lint(["tests"], use_cache=False)
    assert findings == []


def test_sim014_gates_on_sim_core_only(tmp_path, monkeypatch) -> None:
    source = """
        import os

        def width():
            return os.cpu_count() or 1
    """
    harness = lint_tree(
        {"src/repro/harness/amb.py": source}, tmp_path, monkeypatch
    )
    assert harness == []


# --------------------------------------------------------------------- #
# Acceptance: injected wall-clock -> key_fragment flow in the REAL harness
# --------------------------------------------------------------------- #


def test_injected_wall_clock_in_real_key_fragment(tmp_path, monkeypatch) -> None:
    real = (REPO_ROOT / "src/repro/harness/parallel.py").read_text(encoding="utf-8")
    anchor = '"seed": self.seed,'
    assert anchor in real, "key_fragment anchor moved; update this test"
    injected = real.replace(
        anchor, anchor + '\n            "stamp": time.monotonic(),', 1
    )
    target = tmp_path / "src/repro/harness/parallel.py"
    target.parent.mkdir(parents=True)
    target.write_text(injected)
    monkeypatch.chdir(tmp_path)
    findings = simlint.run_lint(["src"], use_cache=False)
    sim013 = [f for f in findings if f.rule == "SIM013"]
    assert sim013, "injected wall-clock -> key_fragment flow was not caught"
    assert any("time.monotonic" in f.message for f in sim013)

    # The unmodified harness stays clean on this rule.
    target.write_text(real)
    clean = simlint.run_lint(["src"], use_cache=False)
    assert [f for f in clean if f.rule == "SIM013"] == []
