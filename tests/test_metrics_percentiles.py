"""Tests for the shared nearest-rank percentile helper."""

import pytest

from repro.metrics.percentiles import (
    SERVICE_POINTS,
    nearest_rank,
    nearest_rank_index,
    nearest_rank_percentiles,
)


class TestNearestRankIndex:
    def test_invalid_count(self):
        with pytest.raises(ValueError):
            nearest_rank_index(0, 50)
        with pytest.raises(ValueError):
            nearest_rank_index(-3, 50)

    def test_invalid_point(self):
        with pytest.raises(ValueError):
            nearest_rank_index(10, -1)
        with pytest.raises(ValueError):
            nearest_rank_index(10, 100.1)

    def test_bounds(self):
        assert nearest_rank_index(10, 0) == 0
        assert nearest_rank_index(10, 100) == 9
        assert nearest_rank_index(1, 99.9) == 0

    def test_matches_historical_integer_formula(self):
        # The trace diff used `min(point * len // 100, len - 1)`; the
        # shared helper must be bit-compatible for integer points.
        for count in range(1, 200):
            for point in (50, 90, 99):
                assert nearest_rank_index(count, point) == min(
                    point * count // 100, count - 1
                )

    def test_tenth_points(self):
        assert nearest_rank_index(10_000, 99.9) == 9_990
        assert nearest_rank_index(100, 99.9) == 99
        # p99.9 only separates from p99 once the sample resolves tenths.
        assert nearest_rank_index(1_000, 99.9) > nearest_rank_index(1_000, 99.0)


class TestNearestRank:
    def test_single_sample(self):
        assert nearest_rank([7], 50) == 7
        assert nearest_rank([7], 99.9) == 7

    def test_sorted_sample(self):
        values = list(range(100))
        assert nearest_rank(values, 50) == 50
        assert nearest_rank(values, 99) == 99
        assert nearest_rank(values, 0) == 0

    def test_ties(self):
        values = [5] * 10 + [9] * 10
        assert nearest_rank(values, 50) == 9
        assert nearest_rank(values, 25) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50)


class TestNearestRankPercentiles:
    def test_empty_sample_is_all_zeros(self):
        assert nearest_rank_percentiles([], (50, 90, 99)) == {50: 0, 90: 0, 99: 0}
        assert nearest_rank_percentiles([], SERVICE_POINTS) == {
            point: 0 for point in SERVICE_POINTS
        }

    def test_sorts_internally(self):
        shuffled = [30, 10, 20, 50, 40]
        assert nearest_rank_percentiles(shuffled, (50,)) == {50: 30}

    def test_always_an_observed_sample(self):
        values = [1, 100, 10_000]
        result = nearest_rank_percentiles(values, SERVICE_POINTS)
        assert set(result.values()) <= set(values)

    def test_key_type_follows_point_type(self):
        by_int = nearest_rank_percentiles([1, 2, 3], (50, 99))
        assert set(by_int) == {50, 99}
        by_float = nearest_rank_percentiles([1, 2, 3], (50.0, 99.9))
        assert set(by_float) == {50.0, 99.9}
