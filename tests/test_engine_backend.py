"""The compiled engine backend: selection, degradation, bit-identity.

``repro.engine.backend`` owns the whole import dance; these tests pin its
contract:

* ``ClusterConfig.backend`` validation, and the resolution semantics of
  ``"auto"``/``REPRO_BACKEND``/``REPRO_NO_NATIVE`` (explicit ``"native"``
  must fail loudly when the module is missing; ``"auto"`` must degrade
  silently with the reason recorded),
* the backend never enters a cache key — results are bit-identical, so
  runs share ``.repro_cache/`` entries across backends (locked by the
  same golden key the service-workload suite pins),
* settings carrying a backend pickle across the farm pool boundary,
* snapshots captured under one backend restore under the other,
* a Hypothesis differential: the native ``EventQueue`` pops the exact
  same sequence as the pure-python reference under interleaved
  schedule/cancel/pop/compaction traffic.

Everything that needs the compiled module skips cleanly when it is not
importable — the pure-python path is the reference and must stand alone.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint import CheckpointConfig, capture_snapshot, restore_snapshot
from repro.core import (
    ClusterConfig,
    ClusterSimulator,
    FixedQuantumPolicy,
)
from repro.engine import backend as backend_mod
from repro.engine.backend import (
    VALID_BACKENDS,
    native_available,
    resolve_backend,
)
from repro.engine.events import EventQueue as PyEventQueue
from repro.engine.units import MICROSECOND
from repro.harness.configs import ground_truth_policy
from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import (
    DiskResultCache,
    ParallelRunner,
    RunnerSettings,
    RunSpec,
)
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import ComputeTime, Recv, Send, SimulatedNode
from repro.workloads import EpWorkload

US = MICROSECOND

needs_native = pytest.mark.skipif(
    not native_available(), reason="compiled engine core not built"
)


@pytest.fixture(autouse=True)
def _isolate_backend_env(monkeypatch):
    """CI runs the whole suite once per backend via a suite-wide
    ``REPRO_BACKEND`` override; these tests pin the *selection semantics*
    themselves, so they must see the real availability state (tests that
    want the override set it explicitly via monkeypatch)."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_NO_NATIVE", raising=False)


def pingpong_apps(rounds=12, nbytes=256):
    def pinger():
        for _ in range(rounds):
            yield Send(dst=1, nbytes=nbytes)
            yield Recv(src=1)
            yield ComputeTime(30 * US)
        return "ping"

    def ponger():
        for _ in range(rounds):
            yield Recv(src=0)
            yield Send(dst=0, nbytes=nbytes)
        return "pong"

    return [pinger(), ponger()]


def run_pingpong(backend, *, checkpoint_dir=None, collect_snaps=False):
    nodes = [SimulatedNode(i, app) for i, app in enumerate(pingpong_apps())]
    controller = NetworkController(2, PAPER_NETWORK(2))
    checkpoint = (
        CheckpointConfig(directory=str(checkpoint_dir), every_quanta=1)
        if checkpoint_dir is not None
        else None
    )
    config = ClusterConfig(seed=11, backend=backend, checkpoint=checkpoint)
    sim = ClusterSimulator(
        nodes, controller, FixedQuantumPolicy(10 * US), config
    )
    snaps = []
    if collect_snaps:
        sim.checkpoint_sink = snaps.append
    return sim.run(), sim, snaps


# --------------------------------------------------------------------- #
# Selection semantics
# --------------------------------------------------------------------- #


class TestResolution:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            resolve_backend("cython")

    def test_cluster_config_backend_is_validated_at_build(self):
        nodes = [SimulatedNode(i, app) for i, app in enumerate(pingpong_apps())]
        controller = NetworkController(2, PAPER_NETWORK(2))
        config = ClusterConfig(seed=11, backend="fortran")
        with pytest.raises(ValueError, match="backend must be one of"):
            ClusterSimulator(nodes, controller, FixedQuantumPolicy(US), config)

    def test_python_is_always_available(self):
        resolved = resolve_backend("python")
        assert resolved.name == "python"
        assert resolved.fallback_reason is None

    def test_forced_fallback_degrades_auto_with_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        resolved = resolve_backend("auto")
        assert resolved.name == "python"
        assert "REPRO_NO_NATIVE" in (resolved.fallback_reason or "")

    def test_forced_fallback_fails_explicit_native(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        with pytest.raises(RuntimeError, match="backend='native' requested"):
            resolve_backend("native")

    def test_env_override_applies_to_auto_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_backend("auto").name == "python"
        # An explicit config value wins over the environment.
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        assert resolve_backend("python").name == "python"

    def test_env_override_rejects_unknown_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "rust")
        with pytest.raises(ValueError, match="REPRO_BACKEND must be one of"):
            resolve_backend("auto")

    @needs_native
    def test_auto_prefers_native_when_available(self):
        resolved = resolve_backend("auto")
        assert resolved.name == "native"
        assert resolved.fallback_reason is None

    def test_capabilities_report_shape(self):
        report = backend_mod.capabilities()
        assert report["python"] is True
        assert isinstance(report["native"], bool)
        assert report["expected_abi"] == backend_mod.EXPECTED_ABI_VERSION


class TestForcedFallbackRuns:
    def test_auto_run_degrades_cleanly_and_surfaces_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        result, sim, _ = run_pingpong("auto")
        assert result.completed
        assert sim.backend == "python"
        assert "REPRO_NO_NATIVE" in (sim.backend_fallback_reason or "")

    def test_harness_surfaces_backend_fallback_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        runner = ExperimentRunner(seed=11, backend="auto")
        record = runner.run(
            EpWorkload(total_ops=2e7, chunks=4), 2, FixedQuantumPolicy(US)
        )
        assert record.result.completed
        assert "REPRO_NO_NATIVE" in (runner.last_backend_fallback_reason or "")

    @needs_native
    def test_harness_reports_no_fallback_under_native(self):
        runner = ExperimentRunner(seed=11, backend="native")
        record = runner.run(
            EpWorkload(total_ops=2e7, chunks=4), 2, FixedQuantumPolicy(US)
        )
        assert record.result.completed
        assert runner.last_backend_fallback_reason is None


# --------------------------------------------------------------------- #
# Cache keys: the backend must never enter one
# --------------------------------------------------------------------- #


class TestCacheKeys:
    # Same pinned key as tests/test_service_workload.py: computed before
    # the backend knob existed, so any backend leak into key_fragment()
    # shows up as a golden mismatch, not just an inequality.
    GOLDEN_EP = "5d64e9c396161e33a4d4e252962789bb"

    @staticmethod
    def key_of(settings_obj):
        spec = RunSpec(
            workload=EpWorkload(),
            size=8,
            policy=ground_truth_policy().build(),
            label="1",
            settings=settings_obj,
        )
        return DiskResultCache.key_of(spec.key_payload())

    def test_key_fragment_is_byte_identical_across_backends(self):
        plain = json.dumps(RunnerSettings().key_fragment(8), sort_keys=True)
        for backend in VALID_BACKENDS:
            knobbed = json.dumps(
                RunnerSettings(backend=backend).key_fragment(8), sort_keys=True
            )
            assert knobbed == plain

    def test_golden_key_unchanged_by_backend(self):
        for backend in VALID_BACKENDS:
            assert self.key_of(RunnerSettings(backend=backend)) == self.GOLDEN_EP


# --------------------------------------------------------------------- #
# Pickling across the farm pool boundary
# --------------------------------------------------------------------- #


class TestPoolBoundary:
    def test_runner_settings_pickle_round_trip(self):
        for backend in VALID_BACKENDS:
            settings_obj = RunnerSettings(backend=backend)
            clone = pickle.loads(pickle.dumps(settings_obj))
            assert clone == settings_obj
            assert clone.build_runner().backend == backend

    def test_cluster_config_pickles(self):
        config = ClusterConfig(seed=3, backend="python")
        assert pickle.loads(pickle.dumps(config)) == config

    def test_backend_crosses_the_pool_boundary(self, tmp_path):
        """A 2-worker batch under an explicit backend equals the serial
        run: the setting survives the pickle trip into pool workers."""
        from repro.harness.configs import paper_policies

        specs = paper_policies()[:2]
        workload = EpWorkload(total_ops=2e7, chunks=4)
        serial = ExperimentRunner(seed=7, backend="python").run_matrix(
            workload, (2,), specs
        )
        farmed = ParallelRunner(
            seed=7,
            backend="python",
            max_workers=2,
            cache_dir=tmp_path / "cache",
        ).run_matrix(workload, (2,), specs)
        assert farmed == serial


# --------------------------------------------------------------------- #
# Cross-backend equivalence: results and snapshots
# --------------------------------------------------------------------- #


@needs_native
class TestCrossBackend:
    def test_results_identical(self):
        py, _, _ = run_pingpong("python")
        nat, _, _ = run_pingpong("native")
        assert dataclasses.asdict(py) == dataclasses.asdict(nat)

    @pytest.mark.parametrize(
        "capture_backend,resume_backend",
        [("python", "native"), ("native", "python")],
    )
    def test_snapshots_restore_across_backends(
        self, tmp_path, capture_backend, resume_backend
    ):
        """A snapshot is backend-neutral: captured under one engine core,
        it must resume under the other to the bit-identical result."""
        reference, _, snaps = run_pingpong(
            capture_backend, checkpoint_dir=tmp_path, collect_snaps=True
        )
        assert reference.completed and snaps
        for index in sorted({0, len(snaps) // 2, len(snaps) - 1}):
            nodes = [
                SimulatedNode(i, app) for i, app in enumerate(pingpong_apps())
            ]
            controller = NetworkController(2, PAPER_NETWORK(2))
            config = ClusterConfig(
                seed=11,
                backend=resume_backend,
                checkpoint=CheckpointConfig(
                    directory=str(tmp_path), every_quanta=1
                ),
            )
            sim = ClusterSimulator(
                nodes, controller, FixedQuantumPolicy(10 * US), config
            )
            sim.checkpoint_sink = lambda _snap: None
            restore_snapshot(sim, snaps[index])
            resumed = sim.run()
            assert dataclasses.asdict(resumed) == dataclasses.asdict(reference)


# --------------------------------------------------------------------- #
# EventQueue differential property
# --------------------------------------------------------------------- #

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(min_value=0, max_value=500)),
        st.tuples(
            st.just("schedule_many"),
            st.lists(
                st.integers(min_value=0, max_value=500), min_size=1, max_size=6
            ),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(
            st.just("pop_before"), st.integers(min_value=0, max_value=600)
        ),
        st.tuples(
            st.just("pop_until"), st.integers(min_value=0, max_value=600)
        ),
    ),
    min_size=1,
    max_size=80,
)


def _fingerprint(event):
    return (event.time, event.tag, event.payload, event._seq, event.alive)


@needs_native
@settings(deadline=None, max_examples=60)
@given(ops=_ops)
def test_event_queue_differential(ops):
    """Python and native queues, driven in lockstep through interleaved
    schedule/cancel/pop/compaction traffic, must agree on every pop (time,
    tag, payload, sequence number), every length, and every dead count."""
    queues = (PyEventQueue(), backend_mod.queue_class("native")())
    live = ([], [])  # parallel records of scheduled events, same order
    serial = 0
    for op, arg in ops:
        if op == "schedule":
            for queue, record in zip(queues, live):
                record.append(queue.schedule(arg, None, "t", serial))
            serial += 1
        elif op == "schedule_many":
            items = [(time, serial + i) for i, time in enumerate(arg)]
            for queue, record in zip(queues, live):
                before = queue._next_seq
                queue.schedule_many(iter(items), tag="m")
                # schedule_many returns nothing; recover the events for
                # cancel targeting via the live snapshot (ordered).
                added = [
                    e for e in queue.live_events() if e._seq >= before
                ]
                record.extend(sorted(added, key=lambda e: e._seq))
            serial += len(arg)
        elif op == "cancel":
            # Only events still owned by the queue are cancellable: a pop
            # transfers ownership to the caller (both implementations
            # corrupt their live count if told to cancel a popped event,
            # by contract — pops below prune the records).
            if live[0]:
                index = arg % len(live[0])
                for queue, record in zip(queues, live):
                    queue.cancel(record[index])
        elif op == "pop":
            assert len(queues[0]) == len(queues[1])
            if queues[0]:
                popped = [queue.pop() for queue in queues]
                assert _fingerprint(popped[0]) == _fingerprint(popped[1])
                for event, record in zip(popped, live):
                    record.remove(event)
        elif op == "pop_before":
            first = queues[0].pop_before(arg)
            second = queues[1].pop_before(arg)
            if first is None or second is None:
                assert first is None and second is None
            else:
                assert _fingerprint(first) == _fingerprint(second)
                for event, record in zip((first, second), live):
                    record.remove(event)
        elif op == "pop_until":
            drained = [list(queue.pop_until(arg)) for queue in queues]
            assert [
                [_fingerprint(e) for e in events] for events in drained
            ][0] == [[_fingerprint(e) for e in events] for events in drained][1]
            for events, record in zip(drained, live):
                for event in events:
                    record.remove(event)
        assert len(queues[0]) == len(queues[1])
        assert queues[0].dead_entries == queues[1].dead_entries
        assert queues[0].peek_time() == queues[1].peek_time()
    final = [[_fingerprint(e) for e in queue.live_events()] for queue in queues]
    assert final[0] == final[1]
