"""Property-based invariants of the full cluster-simulation stack.

Random SPMD programs (same global op sequence on every rank, so they are
deadlock-free by construction) run under randomly drawn quantum policies
and seeds; the invariants hold for every combination:

* runs complete, and with Q <= T (minimum latency) there are no stragglers;
* every routed frame is delivered exactly once, never early;
* straggler handling can only *delay* an application: any configuration's
  makespan is >= the ground truth's;
* the same (workload, policy, seed) replays identically;
* the fast-forward accelerator is observationally equivalent to the
  event-by-event path.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    AdaptiveQuantumPolicy,
    ClusterConfig,
    ClusterSimulator,
    FixedQuantumPolicy,
)
from repro.engine.units import MICROSECOND
from repro.mpi.api import MpiRank, spmd_apps
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.node.requests import Compute

US = MICROSECOND

# ---------------------------------------------------------------------- #
# Random SPMD program generator
# ---------------------------------------------------------------------- #

_op = st.one_of(
    st.tuples(st.just("compute"), st.integers(min_value=10_000, max_value=3_000_000)),
    st.tuples(st.just("barrier"), st.just(0)),
    st.tuples(st.just("allreduce"), st.integers(min_value=8, max_value=4096)),
    st.tuples(st.just("alltoall"), st.integers(min_value=8, max_value=20_000)),
    st.tuples(st.just("ring"), st.integers(min_value=8, max_value=20_000)),
    st.tuples(st.just("bcast"), st.integers(min_value=8, max_value=20_000)),
)

program_schedules = st.lists(_op, min_size=1, max_size=5)
cluster_sizes = st.integers(min_value=2, max_value=5)
seeds = st.integers(min_value=0, max_value=2**31)

policies = st.one_of(
    st.sampled_from([US, 10 * US, 100 * US, 1000 * US]).map(FixedQuantumPolicy),
    st.tuples(
        st.floats(min_value=1.01, max_value=1.4),
        st.floats(min_value=0.02, max_value=0.9),
    ).map(lambda p: AdaptiveQuantumPolicy(US, 1000 * US, inc=p[0], dec=p[1])),
)


def make_program(schedule):
    def program(mpi: MpiRank):
        for op, arg in schedule:
            if op == "compute":
                # Rank-skewed compute keeps nodes at different positions.
                yield Compute(ops=arg * (1 + 0.3 * mpi.rank))
            elif op == "barrier":
                yield from mpi.barrier()
            elif op == "allreduce":
                yield from mpi.allreduce(arg, float(mpi.rank), lambda a, b: a + b)
            elif op == "alltoall":
                yield from mpi.alltoall(arg)
            elif op == "ring":
                right = (mpi.rank + 1) % mpi.size
                left = (mpi.rank - 1) % mpi.size
                yield from mpi.send(right, arg, tag=5)
                yield from mpi.recv(src=left, tag=5)
            elif op == "bcast":
                yield from mpi.bcast(0, arg, value="v" if mpi.rank == 0 else None)
        return "done"

    return program


def run_cluster(schedule, size, policy, seed, fast_forward=True):
    apps = spmd_apps(size, make_program(schedule))
    nodes = [SimulatedNode(rank, app) for rank, app in enumerate(apps)]
    controller = NetworkController(size, PAPER_NETWORK(size))
    config = ClusterConfig(seed=seed, fast_forward=fast_forward)
    return ClusterSimulator(nodes, controller, policy, config).run()


COMMON = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------- #
# Invariants
# ---------------------------------------------------------------------- #


@settings(**COMMON)
@given(schedule=program_schedules, size=cluster_sizes, policy=policies, seed=seeds)
def test_every_run_completes_and_conserves_packets(schedule, size, policy, seed):
    result = run_cluster(schedule, size, policy, seed)
    assert result.completed
    assert all(r == "done" for r in result.app_results)
    stats = result.controller_stats
    # Every routed frame was delivered exactly once.
    delivered = sum(node.deliveries for node in result.node_stats)
    assert delivered == stats.packets_routed
    # Delivery accounting is a partition of the routed frames.
    assert (
        stats.exact_now + stats.exact_future + stats.stragglers
        == stats.packets_routed
    )
    # Frames are never delivered early.
    assert stats.total_delay_error >= 0
    assert stats.max_delay_error >= 0


@settings(**COMMON)
@given(schedule=program_schedules, size=cluster_sizes, seed=seeds)
def test_ground_truth_quantum_never_stragglers(schedule, size, seed):
    result = run_cluster(schedule, size, FixedQuantumPolicy(US), seed)
    assert result.controller_stats.stragglers == 0
    assert result.controller_stats.total_delay_error == 0


@settings(**COMMON)
@given(schedule=program_schedules, size=cluster_sizes, seed=seeds)
def test_ground_truth_metric_is_seed_independent(schedule, size, seed):
    first = run_cluster(schedule, size, FixedQuantumPolicy(US), seed)
    second = run_cluster(schedule, size, FixedQuantumPolicy(US), seed // 2 + 1)
    assert first.makespan == second.makespan


@settings(**COMMON)
@given(schedule=program_schedules, size=cluster_sizes, policy=policies, seed=seeds)
def test_stragglers_only_delay(schedule, size, policy, seed):
    """Late delivery can only push application progress later, so no
    configuration beats the ground truth's makespan."""
    truth = run_cluster(schedule, size, FixedQuantumPolicy(US), seed)
    other = run_cluster(schedule, size, policy, seed)
    assert other.makespan >= truth.makespan


@settings(**COMMON)
@given(schedule=program_schedules, size=cluster_sizes, policy=policies, seed=seeds)
def test_runs_replay_identically(schedule, size, policy, seed):
    first = run_cluster(schedule, size, policy, seed)
    second = run_cluster(schedule, size, policy, seed)
    assert first.makespan == second.makespan
    assert first.host_time == second.host_time
    assert first.controller_stats.stragglers == second.controller_stats.stragglers
    assert first.quantum_stats.quanta == second.quantum_stats.quanta


@settings(deadline=None, max_examples=12, suppress_health_check=[HealthCheck.too_slow])
@given(schedule=program_schedules, size=cluster_sizes, policy=policies, seed=seeds)
def test_fast_forward_is_observationally_equivalent(schedule, size, policy, seed):
    fast = run_cluster(schedule, size, policy, seed, fast_forward=True)
    slow = run_cluster(schedule, size, policy, seed, fast_forward=False)
    assert fast.makespan == slow.makespan
    assert fast.sim_time == slow.sim_time
    assert abs(fast.host_time - slow.host_time) <= 1e-9 * max(fast.host_time, 1.0)
    assert fast.controller_stats.packets_routed == slow.controller_stats.packets_routed
    assert fast.controller_stats.stragglers == slow.controller_stats.stragglers
    assert fast.quantum_stats.quanta == slow.quantum_stats.quanta


@settings(**COMMON)
@given(
    schedule=program_schedules,
    size=cluster_sizes,
    seed=seeds,
    quanta=st.tuples(
        st.sampled_from([10 * US, 100 * US]), st.sampled_from([100 * US, 1000 * US])
    ),
)
def test_quantum_bounds_delay_error(schedule, size, seed, quanta):
    """No single frame can be delayed by more than ~one quantum: straggler
    delivery happens at the destination's current position (inside the
    window) or snaps to the next boundary."""
    small_q, big_q = quanta
    result = run_cluster(schedule, size, FixedQuantumPolicy(big_q), seed)
    assert result.controller_stats.max_delay_error <= big_q
