"""The SARIF 2.1.0 exporter.

Structure, byte-determinism, suppression/codeFlow mapping, CLI wiring,
and validation against the vendored subset of the official SARIF 2.1.0
schema (full-schema semantics for everything simlint emits; validated
with ``jsonschema`` when the environment provides it).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import simlint
from repro.analysis.baseline import BaselineEntry
from repro.analysis.rules import RULES, Finding
from repro.analysis.sarif import (
    FINGERPRINT_KEY,
    SARIF_SCHEMA,
    SARIF_VERSION,
    dumps,
    to_sarif,
)

SCHEMA_PATH = Path(__file__).parent / "fixtures" / "sarif-2.1.0-subset.schema.json"


def make_finding(**overrides) -> Finding:
    fields = {
        "rule": "SIM010",
        "path": "src/repro/core/leak.py",
        "line": 8,
        "col": 4,
        "message": "wall-clock value reaches engine.schedule()",
        "snippet": "engine.schedule(_stamp(), None)",
        "chain": (
            ("src/repro/core/leak.py", 5, "time.time read here"),
            ("src/repro/core/leak.py", 8, "enters the event schedule"),
        ),
    }
    fields.update(overrides)
    return Finding(**fields)


# --------------------------------------------------------------------- #
# Structure
# --------------------------------------------------------------------- #


def test_log_skeleton() -> None:
    log = to_sarif([make_finding()])
    assert log["version"] == SARIF_VERSION == "2.1.0"
    assert log["$schema"] == SARIF_SCHEMA
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "simlint"
    assert len(run["results"]) == 1


def test_every_rule_is_declared_with_stable_index() -> None:
    log = to_sarif([])
    rules = log["runs"][0]["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == sorted(RULES)
    # ruleIndex in results must point into this array.
    log = to_sarif([make_finding(rule="SIM013")])
    (result,) = log["runs"][0]["results"]
    assert rules[result["ruleIndex"]]["id"] == "SIM013"


def test_result_location_and_fingerprint() -> None:
    log = to_sarif([make_finding()])
    (result,) = log["runs"][0]["results"]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 8
    assert region["startColumn"] == 5  # SARIF columns are 1-based
    assert FINGERPRINT_KEY in result["partialFingerprints"]
    assert len(result["partialFingerprints"][FINGERPRINT_KEY]) == 12


def test_chain_becomes_code_flow() -> None:
    log = to_sarif([make_finding()])
    (result,) = log["runs"][0]["results"]
    steps = result["codeFlows"][0]["threadFlows"][0]["locations"]
    assert len(steps) == 2
    assert steps[0]["location"]["message"]["text"] == "time.time read here"
    assert steps[0]["location"]["physicalLocation"]["region"]["startLine"] == 5


def test_chainless_finding_has_no_code_flow() -> None:
    log = to_sarif([make_finding(chain=())])
    (result,) = log["runs"][0]["results"]
    assert "codeFlows" not in result


def test_suppressed_findings_marked() -> None:
    log = to_sarif([make_finding()], suppressed=[make_finding(rule="SIM011")])
    results = log["runs"][0]["results"]
    assert len(results) == 2
    by_rule = {r["ruleId"]: r for r in results}
    assert "suppressions" not in by_rule["SIM010"]
    (suppression,) = by_rule["SIM011"]["suppressions"]
    assert suppression["kind"] == "external"


def test_stale_entries_become_notifications() -> None:
    stale = [BaselineEntry(rule="SIM006", path="src/gone.py", fingerprint="ab" * 6)]
    log = to_sarif([], stale=stale)
    (invocation,) = log["runs"][0]["invocations"]
    assert invocation["executionSuccessful"] is True
    (note,) = invocation["toolExecutionNotifications"]
    assert "stale baseline entry" in note["message"]["text"]
    assert "src/gone.py" in note["message"]["text"]


# --------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------- #


def test_dumps_is_byte_deterministic() -> None:
    findings = [make_finding(), make_finding(rule="SIM013", line=3)]
    first = dumps(to_sarif(findings))
    second = dumps(to_sarif(list(findings)))
    assert first == second
    assert first.endswith("\n")
    assert json.loads(first)  # well-formed


# --------------------------------------------------------------------- #
# Schema validation (jsonschema is an environment tool, not a project dep)
# --------------------------------------------------------------------- #


def validate_against_subset_schema(log: dict) -> None:
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    jsonschema.validate(instance=log, schema=schema)


def test_validates_against_sarif_schema() -> None:
    stale = [BaselineEntry(rule="SIM006", path="src/gone.py", fingerprint="ab" * 6)]
    log = to_sarif(
        [make_finding(), make_finding(rule="SIM002", chain=())],
        suppressed=[make_finding(rule="SIM011")],
        stale=stale,
    )
    validate_against_subset_schema(log)


def test_empty_log_validates() -> None:
    validate_against_subset_schema(to_sarif([]))


# --------------------------------------------------------------------- #
# CLI wiring
# --------------------------------------------------------------------- #


def test_cli_sarif_output(tmp_path, monkeypatch) -> None:
    target = tmp_path / "src/repro/core/leak.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            import time

            def kick(engine):
                engine.schedule(time.time(), None)
            """
        )
    )
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "simlint.sarif"
    rc = simlint.main(
        [
            "--format", "sarif",
            "--output", str(out),
            "--no-cache",
            "--baseline", str(tmp_path / "isolated.baseline"),
            "src",
        ]
    )
    assert rc == 1  # findings still drive the exit code
    log = json.loads(out.read_text(encoding="utf-8"))
    assert log["version"] == "2.1.0"
    rules_fired = {r["ruleId"] for r in log["runs"][0]["results"]}
    assert "SIM010" in rules_fired
    validate_against_subset_schema(log)

    # Two CLI exports of the same tree are byte-identical.
    out2 = tmp_path / "second.sarif"
    simlint.main(
        [
            "--format", "sarif",
            "--output", str(out2),
            "--no-cache",
            "--baseline", str(tmp_path / "isolated.baseline"),
            "src",
        ]
    )
    assert out.read_bytes() == out2.read_bytes()
