"""Tests for packets, fragmentation, latency models, and topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.units import MICROSECOND
from repro.network import (
    BROADCAST,
    JUMBO_FRAME_BYTES,
    FullyConnectedTopology,
    NicSwitchLatencyModel,
    Packet,
    PAPER_NETWORK,
    StarTopology,
    TwoLevelTreeTopology,
    UniformLatencyModel,
)
from repro.network.packet import FRAME_HEADER_BYTES, frames_for_message


class TestPacket:
    def test_rejects_bad_sizes_and_times(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, size_bytes=0, send_time=0)
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, size_bytes=100, send_time=-5)

    def test_rejects_self_send(self):
        with pytest.raises(ValueError):
            Packet(src=3, dst=3, size_bytes=100, send_time=0)

    def test_broadcast_flag(self):
        packet = Packet(src=0, dst=BROADCAST, size_bytes=100, send_time=0)
        assert packet.is_broadcast

    def test_delay_error(self):
        packet = Packet(src=0, dst=1, size_bytes=100, send_time=0)
        assert packet.delay_error == 0
        packet.due_time = 1000
        packet.deliver_time = 1400
        assert packet.delay_error == 400

    def test_clone_for_copies_identity(self):
        packet = Packet(
            src=0, dst=BROADCAST, size_bytes=128, send_time=77, message_id=9, fragment=2
        )
        clone = packet.clone_for(4)
        assert clone.dst == 4
        assert clone.src == 0
        assert clone.send_time == 77
        assert clone.message_id == 9
        assert clone.fragment == 2
        assert clone.packet_id != packet.packet_id

    def test_packet_ids_monotone(self):
        first = Packet(src=0, dst=1, size_bytes=1, send_time=0)
        second = Packet(src=0, dst=1, size_bytes=1, send_time=0)
        assert second.packet_id > first.packet_id


class TestFragmentation:
    def test_zero_payload_costs_one_header_frame(self):
        assert frames_for_message(0) == [FRAME_HEADER_BYTES]

    def test_small_payload_single_frame(self):
        assert frames_for_message(100) == [100 + FRAME_HEADER_BYTES]

    def test_exact_mtu_fill(self):
        capacity = JUMBO_FRAME_BYTES - FRAME_HEADER_BYTES
        assert frames_for_message(capacity) == [JUMBO_FRAME_BYTES]

    def test_split_counts(self):
        capacity = JUMBO_FRAME_BYTES - FRAME_HEADER_BYTES
        sizes = frames_for_message(capacity * 2 + 1)
        assert len(sizes) == 3
        assert sizes[0] == sizes[1] == JUMBO_FRAME_BYTES
        assert sizes[2] == 1 + FRAME_HEADER_BYTES

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            frames_for_message(-1)
        with pytest.raises(ValueError):
            frames_for_message(10, mtu=FRAME_HEADER_BYTES)

    @given(st.integers(min_value=0, max_value=10_000_000))
    def test_property_payload_conserved(self, payload):
        sizes = frames_for_message(payload)
        total_payload = sum(sizes) - FRAME_HEADER_BYTES * len(sizes)
        assert total_payload == max(payload, 0)
        assert all(size <= JUMBO_FRAME_BYTES for size in sizes)
        assert all(size > FRAME_HEADER_BYTES or payload == 0 for size in sizes)


class TestTopologies:
    def test_star_is_uniform(self):
        topo = StarTopology(8, switch_latency=50)
        assert topo.extra_latency(0, 7) == 50
        assert topo.hops(0, 7) == 1
        assert topo.min_extra_latency() == 50

    def test_full_mesh_no_hops(self):
        topo = FullyConnectedTopology(4, link_latency=10)
        assert topo.hops(1, 2) == 0
        assert topo.extra_latency(1, 2) == 10

    def test_two_level_tree_intra_vs_inter(self):
        topo = TwoLevelTreeTopology(8, rack_size=4, edge_latency=100, core_latency=300)
        assert topo.extra_latency(0, 3) == 100
        assert topo.extra_latency(0, 4) == 500
        assert topo.hops(0, 3) == 1
        assert topo.hops(0, 4) == 3
        assert topo.min_extra_latency() == 100

    def test_two_level_tree_single_node_racks(self):
        topo = TwoLevelTreeTopology(4, rack_size=1, edge_latency=100, core_latency=300)
        assert topo.min_extra_latency() == 500

    def test_pair_validation(self):
        topo = StarTopology(4)
        with pytest.raises(ValueError):
            topo.extra_latency(0, 4)
        with pytest.raises(ValueError):
            topo.extra_latency(2, 2)

    def test_too_small_cluster(self):
        with pytest.raises(ValueError):
            StarTopology(1)


class TestLatencyModels:
    def test_uniform(self):
        model = UniformLatencyModel(1500)
        packet = Packet(src=0, dst=1, size_bytes=9000, send_time=0)
        assert model.latency(packet, 1) == 1500
        assert model.min_latency() == 1500

    def test_uniform_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(0)

    def test_paper_network_jumbo_frame(self):
        model = PAPER_NETWORK(8)
        packet = Packet(src=0, dst=1, size_bytes=9000, send_time=0)
        # 1us NIC latency + 9000B * 8 / 10Gbps = 1000ns + 7200ns.
        assert model.latency(packet, 1) == 8200

    def test_paper_network_min_latency_close_to_1us(self):
        model = PAPER_NETWORK(8)
        # Minimum-size frame: 66B header-only -> 52.8ns serialisation.
        assert model.min_latency() == MICROSECOND + 53

    def test_serialization_scales_with_bandwidth(self):
        slow = NicSwitchLatencyModel(StarTopology(2), bandwidth_bits_per_sec=1e9)
        fast = NicSwitchLatencyModel(StarTopology(2), bandwidth_bits_per_sec=10e9)
        assert slow.serialization(9000) == 10 * fast.serialization(9000)

    def test_topology_latency_added(self):
        topo = TwoLevelTreeTopology(8, rack_size=4, edge_latency=100, core_latency=300)
        model = NicSwitchLatencyModel(topo, nic_min_latency=1000)
        near = Packet(src=0, dst=1, size_bytes=66, send_time=0)
        far = Packet(src=0, dst=5, size_bytes=66, send_time=0)
        assert model.latency(far, 5) - model.latency(near, 1) == 400

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NicSwitchLatencyModel(StarTopology(2), bandwidth_bits_per_sec=0)
        with pytest.raises(ValueError):
            NicSwitchLatencyModel(StarTopology(2), nic_min_latency=0)

    @given(st.integers(min_value=1, max_value=9000))
    def test_property_latency_monotone_in_size(self, size):
        model = PAPER_NETWORK(4)
        small = Packet(src=0, dst=1, size_bytes=size, send_time=0)
        bigger = Packet(src=0, dst=1, size_bytes=size + 1, send_time=0)
        assert model.latency(small, 1) <= model.latency(bigger, 1)
