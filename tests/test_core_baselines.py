"""Tests for the alternative-synchronization baselines."""

import pytest

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.core.baselines import (
    free_running,
    null_message_estimate,
    optimistic_estimate,
)
from repro.engine.units import MICROSECOND, SECOND
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.workloads import PingPongWorkload

US = MICROSECOND


def build_cluster(workload, size, seed):
    nodes = [SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(size))]
    controller = NetworkController(size, PAPER_NETWORK(size))
    return nodes, controller, ClusterConfig(seed=seed)


def ground_truth(workload, size, seed=1):
    nodes, controller, config = build_cluster(workload, size, seed)
    sim = ClusterSimulator(nodes, controller, FixedQuantumPolicy(US), config)
    return sim.run()


class TestFreeRunning:
    def run_free(self, seed):
        workload = PingPongWorkload(rounds=10)
        nodes, controller, config = build_cluster(workload, 2, seed)
        result = free_running(nodes, controller, config).run()
        return workload, result

    def test_functional_correctness_preserved(self):
        workload, result = self.run_free(seed=1)
        assert result.completed
        # Every round trip completed: the app exchanged all its messages.
        assert result.node_stats[0].messages_received == 10
        assert result.node_stats[1].messages_received == 10

    def test_timing_is_indeterminable(self):
        """The paper's point: without synchronization the simulated time
        depends on host speeds, so different seeds give different answers
        (while the ground truth is seed-independent)."""
        metrics = set()
        for seed in (1, 2, 3):
            workload, result = self.run_free(seed)
            metrics.add(workload.metric(result))
        assert len(metrics) == 3

    def test_no_barrier_cost(self):
        _, result = self.run_free(seed=1)
        assert result.breakdown.barrier == 0.0

    def test_much_faster_than_ground_truth(self):
        workload = PingPongWorkload(rounds=10)
        truth = ground_truth(workload, 2)
        _, result = self.run_free(seed=1)
        assert result.host_time < truth.host_time / 20


class TestNullMessageEstimate:
    def test_quadratic_in_nodes(self):
        truth = ground_truth(PingPongWorkload(rounds=5), 2)
        two = null_message_estimate(truth, 2, lookahead=US)
        eight = null_message_estimate(truth, 8, lookahead=US)
        # N(N-1): 8 nodes cost 56/2 = 28x the protocol messages of 2 nodes.
        assert eight.sync_overhead == pytest.approx(28 * two.sync_overhead)

    def test_longer_lookahead_cheaper(self):
        truth = ground_truth(PingPongWorkload(rounds=5), 2)
        short = null_message_estimate(truth, 2, lookahead=US)
        long = null_message_estimate(truth, 2, lookahead=10 * US)
        assert long.sync_overhead == pytest.approx(short.sync_overhead / 10)

    def test_speedup_helper(self):
        truth = ground_truth(PingPongWorkload(rounds=5), 2)
        estimate = null_message_estimate(truth, 2, lookahead=US)
        assert estimate.speedup_vs(2 * estimate.host_time) == pytest.approx(2.0)

    def test_validation(self):
        truth = ground_truth(PingPongWorkload(rounds=5), 2)
        with pytest.raises(ValueError):
            null_message_estimate(truth, 2, lookahead=0)
        with pytest.raises(ValueError):
            null_message_estimate(truth, 1, lookahead=US)


class TestOptimisticEstimate:
    def test_checkpointing_dominates(self):
        """The paper's Section 3 argument: 30-40s per checkpoint makes an
        optimistic approach hopeless for full-system simulation."""
        truth = ground_truth(PingPongWorkload(rounds=5), 2)
        estimate = optimistic_estimate(
            truth, 2, checkpoint_interval=100 * US, checkpoint_cost=35.0
        )
        # Checkpoint cost alone dwarfs the whole quantum-synchronized run.
        assert estimate.host_time > 100 * truth.host_time

    def test_rollbacks_priced(self):
        truth = ground_truth(PingPongWorkload(rounds=5), 2)
        quiet = optimistic_estimate(
            truth, 2, checkpoint_interval=SECOND, rollbacks=0
        )
        busy = optimistic_estimate(
            truth, 2, checkpoint_interval=SECOND, rollbacks=100
        )
        assert busy.host_time > quiet.host_time

    def test_defaults_use_observed_stragglers(self):
        truth = ground_truth(PingPongWorkload(rounds=5), 2)
        assert truth.controller_stats.stragglers == 0
        estimate = optimistic_estimate(truth, 2, checkpoint_interval=SECOND)
        assert "0 rollbacks" in estimate.detail

    def test_validation(self):
        truth = ground_truth(PingPongWorkload(rounds=5), 2)
        with pytest.raises(ValueError):
            optimistic_estimate(truth, 2, checkpoint_interval=0)
        with pytest.raises(ValueError):
            optimistic_estimate(truth, 2, checkpoint_interval=US, checkpoint_cost=-1)
