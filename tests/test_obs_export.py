"""Chrome trace-event export and per-quantum CSV: structure and fidelity."""

from __future__ import annotations

import json

from repro.core.quantum import AdaptiveQuantumPolicy, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.harness.configs import PolicySpec
from repro.harness.experiment import ExperimentRunner
from repro.obs.collector import TraceConfig
from repro.obs.export import chrome_trace, quantum_csv, write_chrome_trace, write_jsonl
from repro.workloads import IsWorkload

SEED = 7


def _record(policy_us=None, size=2):
    runner = ExperimentRunner(seed=SEED, trace=TraceConfig(), check=True)
    workload = IsWorkload(total_keys=2**15, iterations=2, ops_per_key=16)
    if policy_us is None:
        spec = PolicySpec(
            "dyn", lambda: AdaptiveQuantumPolicy(MICROSECOND, 1000 * MICROSECOND)
        )
    else:
        spec = PolicySpec(
            f"{policy_us}us", lambda: FixedQuantumPolicy(policy_us * MICROSECOND)
        )
    return runner.run_spec(workload, size, spec)


class TestChromeTrace:
    def test_structure_and_metadata(self):
        record = _record()
        trace = chrome_trace(record.obs, num_nodes=record.size, label="is-dyn")
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert trace["otherData"]["label"] == "is-dyn"
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert {"network-controller", "cluster-nodes", "quanta", "packets"} <= names
        assert {"node 0", "node 1"} <= names
        # Every non-metadata event has the required keys and a pid we own.
        for event in events:
            if event["ph"] == "M":
                continue
            assert event["pid"] in (0, 1)
            assert "ts" in event and "name" in event

    def test_quantum_slices_cover_the_run(self):
        record = _record()
        trace = chrome_trace(record.obs, num_nodes=record.size)
        slices = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "quantum"
        ]
        quanta = record.result.quantum_stats.quanta
        # One slice per quantum (fast-forwarded spans aggregate many).
        aggregated = sum(e["args"].get("quanta", 1) for e in slices)
        assert aggregated == quanta
        # ts/dur are microseconds of simulated time: the slices tile the
        # run from 0 to the final quantum's nominal end (the run may stop
        # inside that last window, so the overshoot is below one slice).
        total_us = sum(e["dur"] for e in slices)
        sim_us = record.result.sim_time / 1000
        longest = max(e["dur"] for e in slices)
        assert sim_us <= total_us + 1e-6
        assert total_us < sim_us + longest + 1e-6

    def test_flow_events_pair_up(self):
        record = _record()
        trace = chrome_trace(record.obs, num_nodes=record.size)
        starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in trace["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) > 0
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        # Flows land on node tracks within range.
        for event in starts + finishes:
            assert event["pid"] == 1
            assert 0 <= event["tid"] < record.size

    def test_straggler_lags_reconcile_with_controller_stats(self):
        """Acceptance: per-packet lag in the exported trace reconciles
        exactly with ControllerStats.stragglers / total_delay_error."""
        record = _record(policy_us=100, size=4)
        stats = record.result.controller_stats
        assert stats.stragglers > 0
        trace = chrome_trace(record.obs, num_nodes=record.size)
        in_flight = [
            e for e in trace["traceEvents"]
            if e.get("cat") == "packet" and e["ph"] == "X" and e["pid"] == 0
        ]
        straggler_lags = [
            e["args"]["lag_ns"] for e in in_flight if e["args"]["straggler"]
        ]
        assert len(straggler_lags) == stats.stragglers
        assert sum(straggler_lags) == stats.total_delay_error
        assert all(
            e["args"]["lag_ns"] == 0 for e in in_flight if not e["args"]["straggler"]
        )

    def test_write_is_deterministic(self, tmp_path):
        record = _record()
        a = write_chrome_trace(record.obs, tmp_path / "a.json", num_nodes=record.size)
        b = write_chrome_trace(record.obs, tmp_path / "b.json", num_nodes=record.size)
        assert a.read_bytes() == b.read_bytes()
        json.loads(a.read_text())  # well-formed


class TestJsonlExport:
    def test_round_trips_ring_events(self, tmp_path):
        record = _record()
        path = write_jsonl(record.obs, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(record.obs)
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == [event.kind for event in record.obs.events]


class TestQuantumCsv:
    def test_shape_and_accounting(self):
        record = _record()
        csv = quantum_csv(record.obs)
        lines = csv.splitlines()
        assert lines[0] == (
            "index,start_ns,end_ns,quantum_ns,np,decision,"
            "host_cost_s,host_barrier_s"
        )
        rows = [line.split(",") for line in lines[1:]]
        assert rows
        covered = 0
        for row in rows:
            assert len(row) == 8
            start, end, quantum = int(row[1]), int(row[2]), int(row[3])
            assert end - start == quantum > 0
            if row[5].startswith("fast-forward:"):
                covered += int(row[5].split(":")[1])
            else:
                covered += 1
                assert row[5] in {"grow", "shrink", "hold", "final"}
        assert covered == record.result.quantum_stats.quanta
