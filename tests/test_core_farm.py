"""Tests for the simulation-farm layout and hierarchical barrier."""

import pytest

from repro.core import ClusterConfig, ClusterSimulator, FarmBarrierModel, FarmLayout
from repro.core.quantum import FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.workloads import PingPongWorkload

US = MICROSECOND


class TestFarmLayout:
    def test_host_mapping(self):
        layout = FarmLayout(simulators_per_host=4)
        assert layout.host_of(0) == 0
        assert layout.host_of(3) == 0
        assert layout.host_of(4) == 1
        assert layout.hosts_for(64) == 16
        assert layout.hosts_for(5) == 2

    def test_co_location(self):
        layout = FarmLayout(simulators_per_host=4)
        assert layout.co_located(0, 3)
        assert not layout.co_located(3, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            FarmLayout(simulators_per_host=0)
        with pytest.raises(ValueError):
            FarmLayout().hosts_for(0)


class TestFarmBarrierModel:
    def test_single_host_is_cheap(self):
        section5 = FarmBarrierModel.paper_section5()
        assert section5.layout.hosts_for(8) == 1
        # One farm round trip + 8 shared-memory syncs.
        assert section5.overhead(8) == pytest.approx(0.6e-3 + 8 * 20e-6 + 0.4e-3)

    def test_scale_out_pays_per_host(self):
        section6 = FarmBarrierModel.paper_section6()
        assert section6.layout.hosts_for(64) == 16
        assert section6.overhead(64) == pytest.approx(
            0.6e-3 + 64 * 20e-6 + 16 * 0.4e-3
        )

    def test_farm_grows_faster_than_single_host(self):
        one_host = FarmBarrierModel(layout=FarmLayout(simulators_per_host=64))
        farm = FarmBarrierModel(layout=FarmLayout(simulators_per_host=4))
        assert farm.overhead(64) > one_host.overhead(64)
        assert farm.overhead(4) == one_host.overhead(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            FarmBarrierModel(base=-1)
        with pytest.raises(ValueError):
            FarmBarrierModel(intra_per_sim=-1)
        with pytest.raises(ValueError):
            FarmBarrierModel().overhead(0)

    def test_drop_in_for_cluster_config(self):
        workload = PingPongWorkload(rounds=3)
        nodes = [
            SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(2))
        ]
        controller = NetworkController(2, PAPER_NETWORK(2))
        config = ClusterConfig(seed=1, barrier=FarmBarrierModel.paper_section5())
        result = ClusterSimulator(
            nodes, controller, FixedQuantumPolicy(US), config
        ).run()
        assert result.completed
        assert result.breakdown.barrier > 0
