"""Tests for the output-queued switch model."""

import pytest

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.network import NetworkController, Packet, StarTopology
from repro.network.queueing import OutputQueuedSwitchModel
from repro.node import SimulatedNode
from repro.node.requests import Recv, Send

US = MICROSECOND


def make_model(**kwargs):
    defaults = dict(
        topology=StarTopology(4),
        bandwidth_bits_per_sec=10e9,
        nic_min_latency=1000,
        port_bits_per_sec=10e9,
    )
    defaults.update(kwargs)
    return OutputQueuedSwitchModel(**defaults)


def packet(src, dst, size=9000, at=0):
    return Packet(src=src, dst=dst, size_bytes=size, send_time=at)


class TestPortQueueing:
    def test_uncontended_latency_components(self):
        model = make_model()
        # 9000B at 10 Gbit/s: 7200ns wire + 7200ns port drain + 1000ns NIC.
        assert model.latency(packet(0, 1), 1) == 1000 + 7200 + 7200
        assert model.contended_packets == 0

    def test_incast_queues_behind_each_other(self):
        model = make_model()
        first = model.latency(packet(0, 3), 3)
        second = model.latency(packet(1, 3), 3)
        # Same due wire arrival; the second drains only after the first.
        assert second == first + 7200
        assert model.contended_packets == 1
        assert model.total_queueing == 7200

    def test_different_ports_do_not_contend(self):
        model = make_model()
        a = model.latency(packet(0, 2), 2)
        b = model.latency(packet(1, 3), 3)
        assert a == b
        assert model.contended_packets == 0

    def test_port_frees_over_time(self):
        model = make_model()
        model.latency(packet(0, 1, at=0), 1)
        late = model.latency(packet(2, 1, at=1_000_000), 1)
        assert late == 1000 + 7200 + 7200  # no residual queueing
        assert model.contended_packets == 0

    def test_slow_port_increases_drain(self):
        slow = make_model(port_bits_per_sec=1e9)
        assert slow.latency(packet(0, 1), 1) == 1000 + 7200 + 72_000

    def test_min_latency_includes_port(self):
        model = make_model()
        # 66B header-only: 53ns wire + 53ns port + 1000ns NIC.
        assert model.min_latency() == 1000 + 53 + 53

    def test_reset_clears_state(self):
        model = make_model()
        model.latency(packet(0, 1), 1)
        model.latency(packet(2, 1), 1)
        model.reset()
        assert model.contended_packets == 0
        assert model.latency(packet(0, 1), 1) == 1000 + 7200 + 7200

    def test_validation(self):
        with pytest.raises(ValueError):
            make_model(bandwidth_bits_per_sec=0)
        with pytest.raises(ValueError):
            make_model(port_bits_per_sec=-1)
        with pytest.raises(ValueError):
            make_model(nic_min_latency=0)


class TestClusterIntegration:
    def run_incast(self, latency_model, size=4, seed=5):
        def program(mpi):
            # Everyone floods rank 0 simultaneously; rank 0 collects.
            if mpi.rank == 0:
                for _ in range(mpi.size - 1):
                    yield Recv()
            else:
                yield Send(dst=0, nbytes=50_000)

        from repro.mpi import spmd_apps

        apps = spmd_apps(size, program)
        nodes = [SimulatedNode(i, app) for i, app in enumerate(apps)]
        controller = NetworkController(size, latency_model)
        sim = ClusterSimulator(
            nodes, controller, FixedQuantumPolicy(US), ClusterConfig(seed=seed)
        )
        return sim.run()

    def test_incast_contention_dilates_completion(self):
        from repro.network import NicSwitchLatencyModel

        perfect = self.run_incast(NicSwitchLatencyModel(StarTopology(4)))
        model = make_model()
        contended = self.run_incast(model)
        assert contended.completed
        assert model.contended_packets > 0
        assert contended.makespan > perfect.makespan

    def test_ground_truth_still_has_zero_stragglers(self):
        model = make_model()
        result = self.run_incast(model)
        assert result.controller_stats.stragglers == 0
