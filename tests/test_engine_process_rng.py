"""Tests for coroutine processes, RNG streams, units, and the sequential loop."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import Process, ProcessExit, RngStreams, Simulator
from repro.engine.process import ProcessError
from repro.engine import units


class TestProcess:
    def test_step_yields_requests_in_order(self):
        def body():
            yield "a"
            got = yield "b"
            assert got == 42
            return "done"

        process = Process(body(), name="t")
        assert process.step() == "a"
        assert process.step() == "b"
        with pytest.raises(ProcessExit) as exc_info:
            process.step(42)
        assert exc_info.value.result == "done"
        assert process.finished
        assert process.result == "done"

    def test_first_step_must_send_none(self):
        def body():
            yield 1

        process = Process(body())
        with pytest.raises(ProcessError):
            process.step("oops")

    def test_step_after_finish_raises_processexit(self):
        def body():
            return 7
            yield  # pragma: no cover

        process = Process(body())
        with pytest.raises(ProcessExit):
            process.step()
        with pytest.raises(ProcessExit):
            process.step()

    def test_exception_in_body_wrapped(self):
        def body():
            yield 1
            raise RuntimeError("boom")

        process = Process(body(), name="failing")
        process.step()
        with pytest.raises(ProcessError) as exc_info:
            process.step(None)
        assert "failing" in str(exc_info.value)
        assert isinstance(exc_info.value.cause, RuntimeError)

    def test_throw_injects_failure(self):
        seen = []

        def body():
            try:
                yield "waiting"
            except ConnectionError:
                seen.append("caught")
                yield "recovered"

        process = Process(body())
        process.step()
        assert process.throw(ConnectionError()) == "recovered"
        assert seen == ["caught"]

    def test_close_terminates(self):
        def body():
            yield 1
            yield 2

        process = Process(body())
        process.step()
        process.close()
        assert process.finished


class TestRngStreams:
    def test_same_name_same_object(self):
        streams = RngStreams(7)
        assert streams.stream("node") is streams.stream("node")

    def test_different_names_are_independent(self):
        streams = RngStreams(7)
        a = streams.stream("a").random(8).tolist()
        b = streams.stream("b").random(8).tolist()
        assert a != b

    def test_reproducible_across_instances(self):
        first = RngStreams(123).stream("jitter").random(16).tolist()
        second = RngStreams(123).stream("jitter").random(16).tolist()
        assert first == second

    def test_seed_changes_output(self):
        first = RngStreams(1).stream("jitter").random(16).tolist()
        second = RngStreams(2).stream("jitter").random(16).tolist()
        assert first != second

    def test_creation_order_does_not_matter(self):
        forward = RngStreams(9)
        forward.stream("x")
        forward_y = forward.stream("y").random(4).tolist()
        backward = RngStreams(9)
        backward_y = backward.stream("y").random(4).tolist()
        backward.stream("x")
        assert forward_y == backward_y

    def test_fresh_restarts_sequence(self):
        streams = RngStreams(5)
        original = streams.stream("s").random(4).tolist()
        restarted = streams.fresh("s").random(4).tolist()
        assert original == restarted

    def test_spawn_indexed_streams_differ(self):
        streams = RngStreams(5)
        node0 = streams.spawn("node", 0).random(4).tolist()
        node1 = streams.spawn("node", 1).random(4).tolist()
        assert node0 != node1

    def test_invalid_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(-1)


class TestUnits:
    def test_conversions(self):
        assert units.microseconds(1) == 1000
        assert units.milliseconds(1) == 1_000_000
        assert units.seconds(1) == 1_000_000_000
        assert units.nanoseconds(2.4) == 2

    def test_round_trips(self):
        assert units.to_seconds(units.seconds(2.5)) == pytest.approx(2.5)
        assert units.to_microseconds(units.microseconds(7)) == pytest.approx(7.0)

    def test_format_time(self):
        assert units.format_time(999) == "999ns"
        assert units.format_time(1500) == "1.500us"
        assert units.format_time(units.milliseconds(2)) == "2.000ms"
        assert units.format_time(units.seconds(3)) == "3.000s"
        assert units.format_time(-1500) == "-1.500us"

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_property_microseconds_scale(self, value):
        assert units.microseconds(value) == round(value * 1000)


class TestSimulator:
    def test_runs_events_in_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(20, lambda: log.append("b"))
        sim.schedule_at(10, lambda: log.append("a"))
        sim.run()
        assert log == ["a", "b"]
        assert sim.now == 20
        assert sim.events_fired == 2

    def test_schedule_after_uses_current_time(self):
        sim = Simulator()
        log = []

        def chain():
            log.append(sim.now)
            if len(log) < 3:
                sim.schedule_after(5, chain)

        sim.schedule_at(0, chain)
        sim.run()
        assert log == [0, 5, 10]

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.schedule_at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5)
        with pytest.raises(ValueError):
            sim.schedule_after(-1)

    def test_run_until_stops_clock_at_limit(self):
        sim = Simulator()
        sim.schedule_at(100, lambda: None)
        stopped = sim.run(until=50)
        assert stopped == 50
        assert len(sim.queue) == 1

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        assert sim.run(until=30) == 30

    def test_max_events(self):
        sim = Simulator()
        for time in range(10):
            sim.schedule_at(time)
        sim.run(max_events=4)
        assert sim.events_fired == 4

    def test_stop_from_inside_event(self):
        sim = Simulator()
        sim.schedule_at(1, sim.stop)
        sim.schedule_at(2, lambda: None)
        sim.run()
        assert sim.now == 1
        assert len(sim.queue) == 1
