"""Golden corpus for simlint v2.

Every fixture under ``tests/fixtures/simlint/`` is a known-bad file
carrying a manifest in its header comments::

    # dest: src/repro/harness/key_leak.py
    # expect: SIM013:15

The test materializes the fixture at its destination path inside a
throwaway project tree (so zone scoping sees the path the bug would
really live at), runs the full v2 analyzer, and asserts the *exact* set
of (rule, line) findings — nothing missing, nothing extra — plus a
source -> sink chain on every whole-program finding.

The corpus directory itself is excluded from normal directory walks
(``DEFAULT_EXCLUDES``), so the live-tree gate never trips over it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import simlint

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "simlint"
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))

#: Rules produced by the whole-program passes: findings must carry chains.
CHAINED_RULES = {f"SIM01{i}" for i in range(5)} | {f"SIM02{i}" for i in range(4)}


def parse_manifest(fixture: Path) -> tuple[str, list[tuple[str, int]]]:
    dest = ""
    expects: list[tuple[str, int]] = []
    for line in fixture.read_text(encoding="utf-8").splitlines():
        if line.startswith("# dest:"):
            dest = line.split(":", 1)[1].strip()
        elif line.startswith("# expect:"):
            for token in line.split(":", 1)[1].split():
                rule, _, lineno = token.partition(":")
                expects.append((rule, int(lineno)))
    return dest, expects


def test_corpus_is_not_empty() -> None:
    assert len(FIXTURES) >= 10
    # Every new rule family is represented.
    stems = "".join(fixture.stem for fixture in FIXTURES)
    for code in ("010", "011", "012", "013", "014", "020", "021", "022", "023"):
        assert f"sim{code}" in stems


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_fixture_detected_exactly(fixture: Path, tmp_path: Path, monkeypatch) -> None:
    dest, expects = parse_manifest(fixture)
    assert dest, f"{fixture.name} is missing a '# dest:' header"
    assert expects, f"{fixture.name} is missing an '# expect:' header"

    target = tmp_path / dest
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(fixture.read_text(encoding="utf-8"))
    monkeypatch.chdir(tmp_path)

    findings = simlint.run_lint(["src"], use_cache=False)
    got = sorted((finding.rule, finding.line) for finding in findings)
    assert got == sorted(expects), (
        f"{fixture.name}: expected {sorted(expects)}, got:\n"
        + "\n".join(f.render() for f in findings)
    )
    for finding in findings:
        assert finding.path == dest
        if finding.rule in CHAINED_RULES:
            assert finding.chain, (
                f"{fixture.name}: {finding.rule} finding lacks a call chain"
            )
            for path, line, note in finding.chain:
                assert isinstance(line, int) and line >= 1
                assert note


def test_corpus_excluded_from_directory_walks(monkeypatch) -> None:
    repo_root = Path(__file__).parent.parent
    monkeypatch.chdir(repo_root)
    files = simlint.iter_python_files(["tests"])
    assert not any("fixtures/simlint" in f.as_posix() for f in files)
    # Explicit file arguments bypass the exclusion.
    explicit = simlint.iter_python_files([str(FIXTURES[0])])
    assert explicit == [FIXTURES[0]]
