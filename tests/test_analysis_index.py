"""The project index and its content-hash cache.

Warm runs must reuse cached entries, cached and uncached analysis must
agree finding-for-finding, corrupt entries are quarantined (mirroring
``DiskResultCache``) and recomputed, and undecodable source files become
a SIM000 finding rather than a crash.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import simlint
from repro.analysis.index import (
    INDEX_VERSION,
    FileCache,
    build_index,
    default_cache_dir,
    index_file,
)

LEAKY = textwrap.dedent(
    """
    import time

    def _stamp():
        return time.time()

    def kick(engine):
        engine.schedule(_stamp(), None)
    """
)


def write_tree(tmp_path: Path) -> Path:
    target = tmp_path / "src/repro/core/leak.py"
    target.parent.mkdir(parents=True)
    target.write_text(LEAKY)
    return target


# --------------------------------------------------------------------- #
# Cache hit/miss mechanics
# --------------------------------------------------------------------- #


def test_warm_run_hits_cache(tmp_path, monkeypatch) -> None:
    write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"

    cold = simlint.run_lint(["src"], cache_dir=cache_dir)
    entries = list(cache_dir.glob("*.json"))
    assert entries, "cold run wrote no cache entries"

    warm = simlint.run_lint(["src"], cache_dir=cache_dir)
    assert [f.render() for f in warm] == [f.render() for f in cold]

    cache = FileCache(cache_dir)
    file = tmp_path / "src/repro/core/leak.py"
    indexed = index_file(file, "src/repro/core/leak.py", cache)
    assert indexed.from_cache
    assert cache.hits == 1 and cache.misses == 0


def test_cached_and_uncached_findings_identical(tmp_path, monkeypatch) -> None:
    write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"

    uncached = simlint.run_lint(["src"], use_cache=False)
    simlint.run_lint(["src"], cache_dir=cache_dir)  # populate
    cached = simlint.run_lint(["src"], cache_dir=cache_dir)
    assert [(f.rule, f.path, f.line, f.col, f.message, f.chain) for f in cached] == [
        (f.rule, f.path, f.line, f.col, f.message, f.chain) for f in uncached
    ]
    # Chains survive the JSON round-trip as tuples of (path, line, note).
    chained = [f for f in cached if f.chain]
    assert chained
    for finding in chained:
        for step in finding.chain:
            assert isinstance(step, tuple) and len(step) == 3


def test_content_change_invalidates(tmp_path, monkeypatch) -> None:
    file = write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"

    before = simlint.run_lint(["src"], cache_dir=cache_dir)
    assert any(f.rule == "SIM010" for f in before)

    file.write_text("def kick(engine, due):\n    engine.schedule(due, None)\n")
    after = simlint.run_lint(["src"], cache_dir=cache_dir)
    assert after == []


def test_key_depends_on_path_and_content() -> None:
    cache = FileCache(Path("/nonexistent"))
    base = cache.key_of("src/a.py", b"x = 1\n")
    assert cache.key_of("src/b.py", b"x = 1\n") != base
    assert cache.key_of("src/a.py", b"x = 2\n") != base
    assert cache.key_of("src/a.py", b"x = 1\n") == base


# --------------------------------------------------------------------- #
# Corruption and quarantine
# --------------------------------------------------------------------- #


def test_corrupt_entry_quarantined_and_recomputed(tmp_path, monkeypatch) -> None:
    write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"

    cold = simlint.run_lint(["src"], cache_dir=cache_dir)
    (entry,) = cache_dir.glob("*.json")
    entry.write_text("{not json", encoding="utf-8")

    warm = simlint.run_lint(["src"], cache_dir=cache_dir)
    assert [f.render() for f in warm] == [f.render() for f in cold]
    assert list(cache_dir.glob("*.corrupt")), "corrupt entry was not quarantined"
    # The recomputed entry was re-written and is valid again.
    (fresh,) = cache_dir.glob("*.json")
    assert json.loads(fresh.read_text())["version"] == INDEX_VERSION


def test_version_mismatch_treated_as_miss(tmp_path, monkeypatch) -> None:
    write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"

    simlint.run_lint(["src"], cache_dir=cache_dir)
    (entry,) = cache_dir.glob("*.json")
    blob = json.loads(entry.read_text())
    blob["version"] = INDEX_VERSION - 1
    entry.write_text(json.dumps(blob), encoding="utf-8")

    cache = FileCache(cache_dir)
    assert cache.get(entry.stem) is None
    assert cache.misses == 1


def test_read_only_cache_dir_never_fails_lint(tmp_path, monkeypatch) -> None:
    write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    blocked = tmp_path / "blocked"
    blocked.write_text("not a directory")  # mkdir(parents=True) will fail

    findings = simlint.run_lint(["src"], cache_dir=blocked)
    assert any(f.rule == "SIM010" for f in findings)


# --------------------------------------------------------------------- #
# Undecodable sources
# --------------------------------------------------------------------- #


def test_undecodable_source_becomes_sim000(tmp_path, monkeypatch) -> None:
    target = tmp_path / "src/repro/core/binary.py"
    target.parent.mkdir(parents=True)
    target.write_bytes(b"x = 1\n\xff\xfe garbage\n")
    monkeypatch.chdir(tmp_path)

    findings = simlint.run_lint(["src"], use_cache=False)
    assert [f.rule for f in findings] == ["SIM000"]
    assert "not valid UTF-8" in findings[0].message
    assert "quarantined" in findings[0].message


def test_undecodable_source_skips_cache(tmp_path) -> None:
    target = tmp_path / "binary.py"
    target.write_bytes(b"\xff\xfe")
    cache = FileCache(tmp_path / "cache")
    indexed = index_file(target, "binary.py", cache)
    assert indexed.summary is None
    assert not indexed.from_cache
    assert not list((tmp_path / "cache").glob("*.json"))


# --------------------------------------------------------------------- #
# Wiring
# --------------------------------------------------------------------- #


def test_build_index_without_cache(tmp_path) -> None:
    file = tmp_path / "mod.py"
    file.write_text("x = 1\n")
    indexed, cache = build_index([(file, "mod.py")], use_cache=False)
    assert cache is None
    assert len(indexed) == 1
    assert indexed[0].summary is not None


def test_default_cache_dir_respects_env(monkeypatch) -> None:
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert default_cache_dir() == Path(".repro_cache") / "simlint"
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/altcache")
    assert default_cache_dir() == Path("/tmp/altcache") / "simlint"


def test_cli_no_cache_flag(tmp_path, monkeypatch, capsys) -> None:
    write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    rc = simlint.main(
        ["--no-cache", "--baseline", str(tmp_path / "isolated.baseline"), "src"]
    )
    assert rc == 1
    assert "SIM010" in capsys.readouterr().out
    assert not (tmp_path / ".repro_cache").exists()
