"""Tests for the workload models: structure, metrics, completion, scaling."""

import pytest

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.engine.units import MICROSECOND, SECOND
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.workloads import (
    CgWorkload,
    EpWorkload,
    IsWorkload,
    LuWorkload,
    MgWorkload,
    NamdWorkload,
    PhaseWorkload,
    PingPongWorkload,
    harmonic_mean,
)

# Small instances so the whole file stays fast; structure is identical to
# the defaults, only the op/byte budgets shrink.
SMALL = {
    "EP": lambda: EpWorkload(total_ops=2e7, chunks=4),
    "IS": lambda: IsWorkload(total_keys=2**16, iterations=3, ops_per_key=16),
    "CG": lambda: CgWorkload(iterations=4, nonzeros=2e6, vector_bytes=65_536),
    "MG": lambda: MgWorkload(cycles=2, levels=3, fine_points=1e6),
    "LU": lambda: LuWorkload(timesteps=4, sweep_ops=8e6, planes=3, residual_every=2),
    "NAMD": lambda: NamdWorkload(timesteps=3, step_ops=2e7, max_partners=3),
}


def run_ground_truth(workload, size, seed=5):
    nodes = [SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(size))]
    controller = NetworkController(size, PAPER_NETWORK(size))
    sim = ClusterSimulator(
        nodes, controller, FixedQuantumPolicy(MICROSECOND), ClusterConfig(seed=seed)
    )
    return sim.run()


class TestHarmonicMean:
    def test_basic(self):
        assert harmonic_mean([1, 1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 2]) == pytest.approx(2.0)
        assert harmonic_mean([1, 3]) == pytest.approx(1.5)

    def test_dominated_by_smallest(self):
        assert harmonic_mean([0.1, 100, 100]) < 0.31

    def test_invalid(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])


@pytest.mark.parametrize("name", sorted(SMALL))
@pytest.mark.parametrize("size", [2, 4])
class TestAllWorkloadsComplete:
    def test_ground_truth_completes_cleanly(self, name, size):
        workload = SMALL[name]()
        result = run_ground_truth(workload, size)
        assert result.completed
        assert result.controller_stats.stragglers == 0
        assert all(t is not None for t in result.app_finish_times)
        metric = workload.metric(result)
        assert metric > 0


class TestWorkloadSemantics:
    def test_ep_allreduce_totals(self):
        workload = SMALL["EP"]()
        result = run_ground_truth(workload, 4)
        for rank_result in result.app_results:
            assert rank_result["total_pairs"] == pytest.approx(workload.total_ops)

    def test_is_checksum_consistent_across_ranks(self):
        result = run_ground_truth(SMALL["IS"](), 4)
        checksums = {r["checksum"] for r in result.app_results}
        assert len(checksums) == 1

    def test_mg_norm_agrees(self):
        result = run_ground_truth(SMALL["MG"](), 4)
        norms = {r["norm"] for r in result.app_results}
        assert norms == {0.0 + 1 + 2 + 3}

    def test_lu_residual_is_global_max(self):
        result = run_ground_truth(SMALL["LU"](), 4)
        assert {r["residual"] for r in result.app_results} == {4.0}

    def test_namd_energy_reduced_every_step(self):
        result = run_ground_truth(SMALL["NAMD"](), 4)
        energies = {r["energy"] for r in result.app_results}
        assert len(energies) == 1

    def test_namd_partner_symmetry(self):
        workload = NamdWorkload(max_partners=7)
        for size in (4, 8, 16, 64):
            lists = {rank: set(workload._partners(rank, size)) for rank in range(size)}
            for rank, partners in lists.items():
                assert rank not in partners
                for partner in partners:
                    assert rank in lists[partner], (size, rank, partner)

    def test_cg_partners_symmetric_and_self_free(self):
        for size in (2, 4, 8, 3, 6, 64):
            lists = {
                rank: dict(CgWorkload._partners(rank, size)) for rank in range(size)
            }
            for rank, by_stride in lists.items():
                assert rank not in by_stride.values()
                for exponent, partner in by_stride.items():
                    # Symmetric at the SAME stride, so the tags agree.
                    assert lists[partner].get(exponent) == rank

    def test_strong_scaling_reduces_makespan(self):
        workload = SMALL["EP"]()
        small = run_ground_truth(workload, 2)
        big = run_ground_truth(SMALL["EP"](), 4)
        assert big.makespan < small.makespan


class TestMetrics:
    def test_nas_mops_definition(self):
        workload = SMALL["EP"]()
        result = run_ground_truth(workload, 2)
        expected = workload.reference_ops / 1e6 / (result.makespan / SECOND)
        assert workload.metric(result) == pytest.approx(expected)

    def test_namd_metric_is_wallclock_seconds(self):
        workload = SMALL["NAMD"]()
        result = run_ground_truth(workload, 2)
        assert workload.metric(result) == pytest.approx(result.makespan / SECOND)

    def test_accuracy_error_zero_against_self(self):
        workload = SMALL["CG"]()
        result = run_ground_truth(workload, 2)
        assert workload.accuracy_error(result, result) == 0.0
        assert workload.exec_time_ratio(result, result) == 1.0


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            EpWorkload(total_ops=-1)
        with pytest.raises(ValueError):
            EpWorkload(chunks=0)
        with pytest.raises(ValueError):
            IsWorkload(iterations=0)
        with pytest.raises(ValueError):
            CgWorkload(iterations=0)
        with pytest.raises(ValueError):
            MgWorkload(cycles=0)
        with pytest.raises(ValueError):
            LuWorkload(planes=0)
        with pytest.raises(ValueError):
            NamdWorkload(timesteps=0)
        with pytest.raises(ValueError):
            NamdWorkload(pme_every=-1)
        with pytest.raises(ValueError):
            PhaseWorkload(pattern="bogus")
        with pytest.raises(ValueError):
            PingPongWorkload(rounds=0)


class TestSyntheticWorkloads:
    @pytest.mark.parametrize("pattern", ["ring", "alltoall", "pairs", "allreduce"])
    def test_phase_patterns_complete(self, pattern):
        workload = PhaseWorkload(phases=2, compute_ops=1e6, pattern=pattern)
        result = run_ground_truth(workload, 4)
        assert result.completed
        assert workload.metric(result) > 0

    def test_pingpong_roundtrip_matches_network(self):
        workload = PingPongWorkload(rounds=5, message_bytes=64)
        result = run_ground_truth(workload, 2)
        mean_rtt_us = workload.metric(result)
        # One-way latency for a 130B frame is 1104ns; the round trip adds
        # receive/send software cost at the peer, so the RTT sits a few us
        # above 2.2us and far below a quantum-snapped value.
        assert 2.0 < mean_rtt_us < 15.0

    def test_pingpong_works_with_spectators(self):
        workload = PingPongWorkload(rounds=3)
        result = run_ground_truth(workload, 4)
        assert result.completed
