"""The shard-safety pass (SIM020-SIM023).

Synthetic minimal drivers exercise each rule both ways (violation fires,
protocol-respecting code stays clean), the *real* ``repro/shard/driver.py``
must lint clean, and — the acceptance gate — a deliberately injected
worker-side write to a parent-owned shared-memory array in the real
driver is caught.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import simlint
from repro.analysis.shardrules import check_shard_source, sync_site_findings

REPO_ROOT = Path(__file__).parent.parent
SHARD_PATH = "src/repro/shard/minimal.py"


def lint_shard(source: str, path: str = SHARD_PATH):
    return check_shard_source(textwrap.dedent(source), path)


def rules_of(findings) -> list[str]:
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------- #
# SIM020: shared-memory ownership
# --------------------------------------------------------------------- #

OWNED_PREAMBLE = """
    import multiprocessing
    from multiprocessing.sharedctypes import RawArray

    _STEP = "step"

    SHM_OWNERS = {"rates": "parent", "times": "worker"}

    def launch(num):
        rates = RawArray("d", num)
        times = RawArray("q", num)
        rates[:] = [1.0] * num
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_worker, args=(child, rates, times))
        proc.start()
        parent.send((_STEP, 0))
        return parent.recv()
"""


def test_sim020_worker_writes_parent_array() -> None:
    findings = lint_shard(
        OWNED_PREAMBLE
        + """
    def _worker(conn, rates, times):
        while True:
            op, node = conn.recv()
            if op == _STEP:
                rates[node] = 0.0
                conn.send((_STEP, node))
            else:
                break
    """
    )
    assert rules_of(findings) == ["SIM020"]
    assert "rates" in findings[0].message
    assert "parent" in findings[0].message


def test_sim020_parent_writes_worker_array() -> None:
    findings = lint_shard(
        OWNED_PREAMBLE.replace("parent.send((_STEP, 0))",
                               "times[0] = 1\n        parent.send((_STEP, 0))")
        + """
    def step(times):
        times[0] = 5

    def _worker(conn, rates, times):
        while True:
            op, node = conn.recv()
            if op == _STEP:
                conn.send((_STEP, node))
            else:
                break
    """
    )
    # launch() creates the arrays (pre-fork init) and is exempt; the
    # parent-side helper step() is not.
    assert rules_of(findings) == ["SIM020"]
    assert "step()" in findings[0].message


def test_sim020_owner_writes_are_clean() -> None:
    findings = lint_shard(
        OWNED_PREAMBLE
        + """
    def publish(rates):
        rates[:] = [2.0]

    def _worker(conn, rates, times):
        while True:
            op, node = conn.recv()
            if op == _STEP:
                times[node] = 7
                conn.send((_STEP, node))
            else:
                break
    """
    )
    assert findings == []


def test_sim020_requires_ownership_table() -> None:
    # No SHM_OWNERS declaration -> the rule has nothing to enforce.
    findings = lint_shard(
        """
        def f(arr):
            arr[0] = 1
        """
    )
    assert findings == []


# --------------------------------------------------------------------- #
# SIM021: pipe-tag pairing
# --------------------------------------------------------------------- #

PROTOCOL_TEMPLATE = """
    import multiprocessing

    _PING = "ping"
    _FLUSH = "flush"

    def drive():
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_worker, args=(child,))
        proc.start()
        parent.send((_PING,))
        parent.send((_FLUSH,))
        return parent.recv()

    def _worker(conn):
        while True:
            command = conn.recv()
            op = command[0]
            if op == _PING:
                conn.send((_PING,))
            {tail}
"""


def test_sim021_unhandled_parent_tag() -> None:
    findings = lint_shard(PROTOCOL_TEMPLATE.format(tail=""))
    assert rules_of(findings) == ["SIM021"]
    assert "_FLUSH" in findings[0].message


def test_sim021_catch_all_else_handles_everything() -> None:
    findings = lint_shard(
        PROTOCOL_TEMPLATE.format(tail="else:\n                break")
    )
    assert findings == []


def test_sim021_explicit_compare_handles_tag() -> None:
    findings = lint_shard(
        PROTOCOL_TEMPLATE.format(
            tail="elif op == _FLUSH:\n                conn.send((_FLUSH,))"
        )
    )
    assert findings == []


def test_sim021_unrecognized_worker_reply() -> None:
    findings = lint_shard(
        """
        import multiprocessing

        _PING = "ping"
        _ROGUE = "rogue"

        def drive():
            ctx = multiprocessing.get_context("fork")
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker, args=(child,))
            proc.start()
            parent.send((_PING,))
            return parent.recv()

        def _worker(conn):
            while True:
                command = conn.recv()
                if command[0] == _PING:
                    conn.send((_ROGUE, 1))
                else:
                    break
        """
    )
    assert rules_of(findings) == ["SIM021"]
    assert "_ROGUE" in findings[0].message


def test_sim021_error_tag_compared_parent_side_ok() -> None:
    findings = lint_shard(
        """
        import multiprocessing

        _PING = "ping"
        _ERROR = "error"

        def drive():
            ctx = multiprocessing.get_context("fork")
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker, args=(child,))
            proc.start()
            parent.send((_PING,))
            reply = parent.recv()
            if reply[0] == _ERROR:
                raise RuntimeError(reply[1])
            return reply

        def _worker(conn):
            while True:
                command = conn.recv()
                if command[0] == _PING:
                    conn.send((_ERROR, "boom"))
                else:
                    break
        """
    )
    assert findings == []


# --------------------------------------------------------------------- #
# SIM023: parent-only accounting in worker code
# --------------------------------------------------------------------- #


def test_sim023_worker_mutates_accounting() -> None:
    findings = lint_shard(
        """
        import multiprocessing

        def launch(sim):
            ctx = multiprocessing.get_context("fork")
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker, args=(sim, child))
            proc.start()
            return parent

        def _worker(sim, conn):
            sim.perf.quanta += 1
            sim.quantum_stats.record(4)
            conn.send(None)
        """
    )
    assert rules_of(findings) == ["SIM023", "SIM023"]


def test_sim023_parent_accounting_is_fine() -> None:
    findings = lint_shard(
        """
        import multiprocessing

        def launch(sim):
            ctx = multiprocessing.get_context("fork")
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker, args=(child,))
            proc.start()
            sim.perf.quanta += 1
            sim.quantum_stats.record(4)
            return parent

        def _worker(conn):
            conn.send(None)
        """
    )
    assert findings == []


def test_sim023_covers_transitive_worker_callees() -> None:
    findings = lint_shard(
        """
        import multiprocessing

        def launch(sim):
            ctx = multiprocessing.get_context("fork")
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker, args=(sim, child))
            proc.start()
            return parent

        def _worker(sim, conn):
            _helper(sim)
            conn.send(None)

        def _helper(sim):
            sim.perf.quanta += 1
        """
    )
    assert rules_of(findings) == ["SIM023"]
    assert "_helper" in findings[0].message


# --------------------------------------------------------------------- #
# SIM022: sync primitives in fork-inherited objects (index-driven)
# --------------------------------------------------------------------- #


def test_sim022_lock_in_sim_core(tmp_path, monkeypatch) -> None:
    target = tmp_path / "src/repro/node/locky.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "import threading\n\n\nclass Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
    )
    monkeypatch.chdir(tmp_path)
    findings = simlint.run_lint(["src"], use_cache=False)
    assert rules_of(findings) == ["SIM022"]
    assert "threading.Lock" in findings[0].message


def test_sim022_harness_zone_exempt() -> None:
    summary = {
        "path": "src/repro/harness/pool.py",
        "zone": "harness",
        "sync_sites": [["threading.Lock", 3]],
    }
    assert sync_site_findings([summary]) == []


def test_sim022_shard_process_machinery_not_flagged(tmp_path, monkeypatch) -> None:
    # Process/Pipe/RawArray ARE the shard mechanism, not inherited state.
    target = tmp_path / "src/repro/shard/mini.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "import multiprocessing\n\n\ndef launch():\n"
        "    ctx = multiprocessing.get_context('fork')\n"
        "    return ctx.Pipe()\n"
    )
    monkeypatch.chdir(tmp_path)
    findings = simlint.run_lint(["src"], use_cache=False)
    assert findings == []


# --------------------------------------------------------------------- #
# The real driver: clean as written, caught when broken
# --------------------------------------------------------------------- #


def real_driver_source() -> str:
    return (REPO_ROOT / "src/repro/shard/driver.py").read_text(encoding="utf-8")


def test_real_driver_is_clean() -> None:
    findings = check_shard_source(real_driver_source(), "src/repro/shard/driver.py")
    assert findings == []


def test_injected_worker_shm_write_is_caught() -> None:
    source = real_driver_source()
    # The worker's shared-array publish loop (NOT the look-alike line in
    # the parent's pre-fork init, which is ownership-exempt).
    anchor = "busy_mask[node_id] = nodes[node_id].activity == BUSY"
    assert source.count(anchor) == 1, "worker publish anchor moved; update this test"
    injected = source.replace(
        anchor, anchor + "\n                    busy_rates[node_id] = 0.5", 1
    )
    findings = check_shard_source(injected, "src/repro/shard/driver.py")
    assert rules_of(findings) == ["SIM020"]
    assert "busy_rates" in findings[0].message
    assert "_shard_worker" in findings[0].message


def test_injected_unpaired_tag_is_caught() -> None:
    source = real_driver_source()
    injected = source.replace(
        '_ERROR = "error"', '_ERROR = "error"\n_NUDGE = "nudge"', 1
    ).replace(
        "conns[index].send((_REPORT,))",
        "conns[index].send((_NUDGE,))\n                conns[index].send((_REPORT,))",
        1,
    )
    assert "_NUDGE" in injected
    findings = check_shard_source(injected, "src/repro/shard/driver.py")
    # The worker's dispatch has a catch-all else, so a *command* tag is
    # always handled; send it from the worker instead to break pairing.
    injected_worker = source.replace(
        '_ERROR = "error"', '_ERROR = "error"\n_NUDGE = "nudge"', 1
    ).replace(
        "conn.send((_FINAL, shard_last, float(finish_host)))",
        "conn.send((_NUDGE,))\n                conn.send("
        "(_FINAL, shard_last, float(finish_host)))",
        1,
    )
    findings = check_shard_source(injected_worker, "src/repro/shard/driver.py")
    assert rules_of(findings) == ["SIM021"]
    assert "_NUDGE" in findings[0].message
