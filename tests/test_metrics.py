"""Tests for accuracy aggregation, Pareto analysis, and traffic traces."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import ParetoPoint, TrafficTrace, nas_aggregate, pareto_front, relative_error
from repro.metrics.accuracy import nas_aggregate_error
from repro.metrics.pareto import distance_to_front


class TestRelativeError:
    def test_basic(self):
        assert relative_error(90, 100) == pytest.approx(0.1)
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(100, 100) == 0.0

    def test_can_exceed_one(self):
        # Time metrics can be dilated beyond 2x (paper reports 104%).
        assert relative_error(210, 100) == pytest.approx(1.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1, 0)


class TestNasAggregate:
    def test_harmonic_aggregation(self):
        assert nas_aggregate({"EP": 2.0, "IS": 2.0}) == pytest.approx(2.0)

    def test_error_requires_matching_suites(self):
        with pytest.raises(ValueError):
            nas_aggregate_error({"EP": 1.0}, {"EP": 1.0, "IS": 2.0})

    def test_error_value(self):
        config = {"EP": 50.0, "IS": 50.0}
        truth = {"EP": 100.0, "IS": 100.0}
        assert nas_aggregate_error(config, truth) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nas_aggregate({})


class TestPareto:
    def test_dominates(self):
        better = ParetoPoint("a", error=0.1, speedup=10)
        worse = ParetoPoint("b", error=0.2, speedup=5)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a = ParetoPoint("a", 0.1, 10)
        b = ParetoPoint("b", 0.1, 10)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_incomparable(self):
        accurate = ParetoPoint("a", 0.01, 2)
        fast = ParetoPoint("b", 0.5, 50)
        assert not accurate.dominates(fast)
        assert not fast.dominates(accurate)

    def test_front_extraction(self):
        points = [
            ParetoPoint("slow-accurate", 0.01, 2),
            ParetoPoint("fast-sloppy", 0.5, 50),
            ParetoPoint("dominated", 0.5, 10),
            ParetoPoint("balanced", 0.1, 20),
        ]
        front = pareto_front(points)
        labels = [p.label for p in front]
        assert labels == ["slow-accurate", "balanced", "fast-sloppy"]

    def test_front_keeps_duplicates(self):
        points = [ParetoPoint("a", 0.1, 10), ParetoPoint("b", 0.1, 10)]
        assert len(pareto_front(points)) == 2

    def test_distance_zero_on_front(self):
        points = [ParetoPoint("a", 0.1, 10), ParetoPoint("b", 0.5, 50)]
        front = pareto_front(points)
        assert distance_to_front(points[0], front) == 0.0

    def test_distance_of_dominated_point(self):
        front = pareto_front([ParetoPoint("a", 0.10, 10)])
        dominated = ParetoPoint("c", 0.12, 9)
        distance = distance_to_front(dominated, front)
        assert distance == pytest.approx(max(0.02, 1 / 10))

    def test_distance_requires_front(self):
        with pytest.raises(ValueError):
            distance_to_front(ParetoPoint("a", 0.1, 1), [])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=0.1, max_value=100),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_front_members_are_mutually_nondominating(self, raw):
        points = [ParetoPoint(str(i), e, s) for i, (e, s) in enumerate(raw)]
        front = pareto_front(points)
        assert front  # at least one point always survives
        for member in front:
            assert not any(other.dominates(member) for other in points)


class TestTrafficTrace:
    def fill(self, trace, count, num_nodes=4, step=100):
        for index in range(count):
            trace.record(index * step, index % num_nodes, (index + 1) % num_nodes, 1000)

    def test_records_and_counts(self):
        trace = TrafficTrace(4)
        self.fill(trace, 10)
        assert trace.total_packets == 10
        assert trace.total_bytes == 10_000
        assert len(trace.samples) == 10
        assert trace.sampled_fraction == 1.0

    def test_thinning_bounds_memory(self):
        trace = TrafficTrace(4, max_samples=64)
        self.fill(trace, 10_000)
        assert trace.total_packets == 10_000
        assert len(trace.samples) <= 65
        # Sampling stays roughly uniform: span covered end to end.
        start, end = trace.time_span()
        assert start < 10_000 * 100 * 0.1
        assert end > 10_000 * 100 * 0.8

    def test_density_covers_span(self):
        trace = TrafficTrace(4)
        self.fill(trace, 600)
        density = trace.density(buckets=6)
        assert sum(density) == 600
        assert all(count > 50 for count in density)

    def test_busy_fraction_sparse_vs_dense(self):
        sparse = TrafficTrace(4)
        sparse.record(0, 0, 1, 10)
        sparse.record(1_000_000, 0, 1, 10)
        dense = TrafficTrace(4)
        self.fill(dense, 5000, step=10)
        assert sparse.busy_fraction() < 0.1
        assert dense.busy_fraction() > 0.9

    def test_ascii_chart_shape(self):
        trace = TrafficTrace(8)
        self.fill(trace, 100, num_nodes=8)
        chart = trace.ascii_chart(width=40, max_rows=8)
        lines = chart.splitlines()
        assert len(lines) == 9  # header + 8 node rows
        assert "|" in chart

    def test_ascii_chart_empty(self):
        assert TrafficTrace(4).ascii_chart() == "(no traffic)"

    def test_csv_output(self):
        trace = TrafficTrace(4)
        trace.record(5, 1, 2, 99)
        csv = trace.to_csv()
        assert csv.splitlines() == ["time_ns,src,dst,size_bytes", "5,1,2,99"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficTrace(1)
        with pytest.raises(ValueError):
            TrafficTrace(4, max_samples=1)
        with pytest.raises(ValueError):
            TrafficTrace(4).density(0)
