"""Tests for the experiment harness: runner, figures, sweeps, reports, CLI.

Everything runs on deliberately small workload instances — the point is to
exercise the machinery (ground-truth caching, comparisons, aggregation,
rendering), not to regenerate the paper numbers (the benchmarks do that).
"""

import pytest

from repro.core.quantum import FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.harness import figures
from repro.harness.configs import (
    PAPER_SIZES,
    PolicySpec,
    ground_truth_policy,
    nas_suite,
    paper_policies,
    scaleout_configs,
)
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import format_table, microseconds, percent, times
from repro.harness.sweep import sweep_inc_dec
from repro.workloads import EpWorkload, PhaseWorkload

US = MICROSECOND


def small_suite():
    from repro.workloads import CgWorkload, IsWorkload

    return [
        EpWorkload(total_ops=2e7, chunks=4),
        IsWorkload(total_keys=2**15, iterations=2, ops_per_key=16),
        CgWorkload(iterations=3, nonzeros=2e6, vector_bytes=32_768),
    ]


class TestConfigs:
    def test_paper_policy_labels(self):
        labels = [spec.label for spec in paper_policies()]
        assert labels == ["10", "100", "1k", "dyn 1k 1.03:0.02", "dyn 1k 1.05:0.02"]

    def test_ground_truth_is_1us_fixed(self):
        policy = ground_truth_policy().build()
        assert isinstance(policy, FixedQuantumPolicy)
        assert policy.quantum == US

    def test_policy_factories_make_fresh_objects(self):
        spec = paper_policies()[0]
        assert spec.build() is not spec.build()

    def test_nas_suite_names(self):
        assert [w.name for w in nas_suite()] == ["EP", "IS", "CG", "MG", "LU"]

    def test_paper_sizes(self):
        assert PAPER_SIZES == (2, 4, 8)

    def test_scaleout_configs(self):
        configs = scaleout_configs()
        assert [c.name for c in configs] == ["EP", "IS", "NAMD"]
        assert all(c.size == 64 for c in configs)
        assert all(c.paper_rows for c in configs)


class TestExperimentRunner:
    def test_ground_truth_cached(self):
        runner = ExperimentRunner(seed=3)
        workload = EpWorkload(total_ops=2e7)
        first = runner.ground_truth(workload, 2)
        second = runner.ground_truth(workload, 2)
        assert first is second

    def test_comparison_row_fields(self):
        runner = ExperimentRunner(seed=3)
        workload = EpWorkload(total_ops=2e7)
        spec = PolicySpec("1k", lambda: FixedQuantumPolicy(1000 * US))
        row = runner.run_and_compare(workload, 2, spec)
        assert row.policy_label == "1k"
        assert row.speedup > 1.0
        assert row.accuracy_error >= 0.0
        assert row.exec_time_ratio >= 1.0
        assert "speedup" in row.describe()

    def test_seeds_change_speed_not_truth_metric(self):
        workload = EpWorkload(total_ops=2e7)
        a = ExperimentRunner(seed=1).ground_truth(workload, 2)
        b = ExperimentRunner(seed=2).ground_truth(workload, 2)
        assert a.metric == b.metric
        assert a.result.host_time != b.result.host_time

    def test_run_matrix_covers_grid(self):
        runner = ExperimentRunner(seed=3)
        specs = paper_policies()[:2]
        rows = runner.run_matrix(EpWorkload(total_ops=2e7), (2, 4), specs)
        assert len(rows) == 4
        assert {(r.size, r.policy_label) for r in rows} == {
            (2, "10"),
            (2, "100"),
            (4, "10"),
            (4, "100"),
        }

    def test_traffic_recording(self):
        runner = ExperimentRunner(seed=3, record_traffic=True)
        record = runner.ground_truth(EpWorkload(total_ops=2e7), 2)
        assert record.trace is not None
        assert record.trace.total_packets == record.result.controller_stats.packets_routed


class TestFigures:
    def test_nas_suite_matrix_small(self):
        runner = ExperimentRunner(seed=3)
        result = figures.run_nas_suite_matrix(
            runner, (2,), specs=paper_policies()[:2], suite=small_suite()
        )
        assert len(result.cells) == 2
        cell = result.cell("10", 2)
        assert cell.accuracy_error < 0.2
        assert cell.speedup > 2
        assert len(cell.per_benchmark) == 3
        text = result.render("test")
        assert "accuracy error" in text and "speedup" in text

    def test_suite_cell_lookup_error(self):
        runner = ExperimentRunner(seed=3)
        result = figures.run_nas_suite_matrix(
            runner, (2,), specs=paper_policies()[:1], suite=[EpWorkload(total_ops=2e7)]
        )
        with pytest.raises(KeyError):
            result.cell("nope", 2)

    def test_figure8_front_contains_extremes(self):
        runner = ExperimentRunner(seed=3)
        nas = figures.run_nas_suite_matrix(
            runner, (2,), specs=paper_policies()[:3], suite=[EpWorkload(total_ops=2e7)]
        )
        result = figures.figure8(runner, size=2, nas=nas, namd=nas)
        assert result.front
        rendered = result.render()
        assert "pareto" in rendered.lower()

    def test_section6_rows(self):
        from repro.harness.configs import ScaleoutConfig
        from repro.core.quantum import AdaptiveQuantumPolicy

        config = ScaleoutConfig(
            name="EP",
            workload_factory=lambda: EpWorkload(total_ops=4e7),
            size=4,
            fixed_quanta=(100 * US,),
            dyn_label="dyn 1:100",
            dyn_factory=lambda: AdaptiveQuantumPolicy(US, 100 * US),
            paper_rows={"100us": (72.7, "0.10%")},
        )
        runner = ExperimentRunner(seed=3)
        result = figures.section6(runner, config)
        assert [row.label for row in result.rows] == ["100us", "dyn 1:100"]
        assert result.row("100us").speedup > result.row("dyn 1:100").speedup * 0.1
        assert "Section 6" in result.render()

    def test_figure9_produces_series_and_trace(self):
        from repro.harness.configs import ScaleoutConfig
        from repro.core.quantum import AdaptiveQuantumPolicy

        config = ScaleoutConfig(
            name="PHASES",
            workload_factory=lambda: PhaseWorkload(phases=3, compute_ops=2e6),
            size=4,
            fixed_quanta=(),
            dyn_label="dyn",
            dyn_factory=lambda: AdaptiveQuantumPolicy(US, 100 * US),
        )
        result = figures.figure9(
            lambda record_traffic, timeline_bucket: ExperimentRunner(
                seed=3, record_traffic=record_traffic, timeline_bucket=timeline_bucket
            ),
            config,
            bucket=100 * US,
        )
        assert result.trace.total_packets > 0
        assert result.speedup_series
        assert all(speedup > 0 for _, speedup in result.speedup_series)
        assert "Figure 9" in result.render()


class TestSweep:
    def test_sweep_grid_and_bests(self):
        runner = ExperimentRunner(seed=3)
        workload = PhaseWorkload(phases=3, compute_ops=5e6)
        result = sweep_inc_dec(
            runner, workload, 2, incs=(1.03, 1.30), decs=(0.02, 0.90)
        )
        assert len(result.points) == 4
        best_err = result.best_by_error()
        best_speed = result.best_by_speedup()
        assert best_err.row.accuracy_error <= best_speed.row.accuracy_error
        assert "sweep" in result.render()


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[2].startswith("-")
        assert lines[3].startswith("a ")
        assert lines[4].startswith("long-name")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "extra"]])

    def test_format_table_empty_rows(self):
        # No data rows: just the (optional) title, header, and separator.
        text = format_table(["col-a", "b"], [])
        lines = text.splitlines()
        assert lines == ["col-a  b", "-----  -"]
        titled = format_table(["col-a", "b"], [], "Empty")
        assert titled.splitlines()[0] == "Empty"

    def test_format_table_wide_unicode_alignment(self):
        # CJK glyphs occupy two terminal cells; columns must still line up.
        from repro.harness.report import display_width

        assert display_width("節點") == 4
        assert display_width("ascii") == 5
        text = format_table(
            ["name", "value"], [["節點", 1], ["ascii-node", 22]]
        )
        lines = text.splitlines()
        widths = {display_width(line) for line in lines[1:]}
        # Both data rows end at the same display column (value is
        # right-aligned; trailing whitespace is stripped).
        assert len(widths) == 1
        assert lines[2].endswith(" 1") and lines[3].endswith("22")

    def test_helpers(self):
        assert percent(0.1234) == "12.34%"
        assert times(2.5) == "2.5x"
        assert microseconds(1500) == "1.5us"

    def test_fault_report_empty_without_stats(self):
        from repro.harness.report import fault_report

        class _Result:
            fault_stats = None
            transport_stats = None

        assert fault_report([("run-a", _Result()), ("run-b", _Result())]) == ""
        assert fault_report([]) == ""

    def test_fault_report_renders_zero_fault_runs(self):
        from repro.faults.injector import FaultStats
        from repro.harness.report import fault_report

        class _Result:
            # A fault plan was configured but never fired: the stats block
            # exists with all-zero counters and must render as zeros, not
            # dashes (dashes mean "no injector at all").
            fault_stats = FaultStats()
            transport_stats = None

        text = fault_report([("quiet", _Result())])
        assert "Fault injection and transport recovery" in text
        row = text.splitlines()[-1]
        assert row.startswith("quiet")
        assert row.split()[1:5] == ["0", "0", "0", "0"]
        assert row.split()[5:] == ["-", "-", "-"]


class TestCli:
    def test_cli_sweep_smoke(self, capsys):
        from repro.harness import cli

        # The sweep command on the smallest workload the CLI exposes would
        # still be slow; instead exercise argument plumbing via fig8's
        # machinery being invoked through a tiny monkeypatched matrix.
        parser_exit = cli.main(["--seed", "3", "sweep", "--workload", "EP", "--size", "2"])
        assert parser_exit == 0
        out = capsys.readouterr().out
        assert "inc/dec sweep" in out

    def test_cli_unknown_case_rejected(self):
        from repro.harness import cli

        with pytest.raises(SystemExit):
            cli._scaleout("XX")
