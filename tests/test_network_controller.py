"""Tests for the network controller's delivery policy (paper Figure 3)."""

import pytest

from repro.network import (
    BROADCAST,
    DeliveryKind,
    NetworkController,
    Packet,
    UniformLatencyModel,
)


class FakeCluster:
    """A scriptable ClusterState: fixed window, per-node linear positions."""

    def __init__(self, start, end, rates):
        # rates: simulated ns advanced per unit of host time, per node.
        self.start = start
        self.end = end
        self.rates = rates

    def quantum_window(self):
        return (self.start, self.end)

    def node_position_at(self, node, host_time):
        return min(self.start + round(self.rates[node] * host_time), self.end)


def make_controller(num_nodes=2, latency=1000, start=0, end=10_000, rates=None):
    cluster = FakeCluster(start, end, rates or [1000] * num_nodes)
    controller = NetworkController(num_nodes, UniformLatencyModel(latency))
    controller.bind(cluster)
    return controller, cluster


class TestDeliveryPolicy:
    def test_exact_now_when_destination_behind(self):
        # Destination advances 1000 ns/host-unit; at host time 1 it sits at
        # 1000 < due=3000 -> exact delivery.
        controller, _ = make_controller()
        packet = Packet(src=0, dst=1, size_bytes=100, send_time=2000)
        decisions = controller.submit(packet, sender_host_time=1.0)
        assert len(decisions) == 1
        assert decisions[0].kind is DeliveryKind.EXACT_NOW
        assert decisions[0].deliver_time == 3000
        assert not packet.straggler

    def test_straggler_now_when_destination_ahead(self):
        # Destination at host time 6 sits at 6000 > due=3000, still < end.
        controller, _ = make_controller()
        packet = Packet(src=0, dst=1, size_bytes=100, send_time=2000)
        decisions = controller.submit(packet, sender_host_time=6.0)
        assert decisions[0].kind is DeliveryKind.STRAGGLER_NOW
        assert decisions[0].deliver_time == 6000
        assert packet.straggler
        assert packet.delay_error == 3000

    def test_straggler_next_quantum_when_destination_done(self):
        # Destination reached the barrier: position capped at end=10000.
        controller, _ = make_controller()
        packet = Packet(src=0, dst=1, size_bytes=100, send_time=2000)
        decisions = controller.submit(packet, sender_host_time=50.0)
        assert decisions == []  # held for the next window
        assert controller.pending_count() == 1
        released = controller.release_due(10_000, 20_000)
        assert released[0].kind is DeliveryKind.STRAGGLER_NEXT_QUANTUM
        assert released[0].deliver_time == 10_000

    def test_exact_future_held_until_window(self):
        # Due at 9500+1000=10500 >= end -> held, delivered exactly later.
        controller, _ = make_controller()
        packet = Packet(src=0, dst=1, size_bytes=100, send_time=9500)
        decisions = controller.submit(packet, sender_host_time=9.9)
        assert decisions == []
        assert controller.next_held_time() == 10_500
        released = controller.release_due(10_000, 20_000)
        assert released[0].kind is DeliveryKind.EXACT_FUTURE
        assert released[0].deliver_time == 10_500
        assert not packet.straggler

    def test_due_exactly_at_window_end_goes_to_next_window(self):
        controller, _ = make_controller()
        packet = Packet(src=0, dst=1, size_bytes=100, send_time=9000)
        assert controller.submit(packet, sender_host_time=9.0) == []
        assert controller.release_due(10_000, 20_000)[0].deliver_time == 10_000

    def test_boundary_position_equal_due_is_exact(self):
        # position == due counts as "not yet past it" (can still deliver).
        controller, _ = make_controller()
        packet = Packet(src=0, dst=1, size_bytes=100, send_time=2000)
        decisions = controller.submit(packet, sender_host_time=3.0)
        assert decisions[0].kind is DeliveryKind.EXACT_NOW

    def test_release_due_leaves_later_frames(self):
        controller, _ = make_controller()
        early = Packet(src=0, dst=1, size_bytes=100, send_time=9500)
        late = Packet(src=0, dst=1, size_bytes=100, send_time=25_000)
        controller.submit(early, 9.9)
        controller.submit(late, 9.9)
        released = controller.release_due(10_000, 20_000)
        assert [d.packet is early for d in released] == [True]
        assert controller.pending_count() == 1

    def test_release_due_detects_missed_window(self):
        controller, _ = make_controller()
        packet = Packet(src=0, dst=1, size_bytes=100, send_time=9500)
        controller.submit(packet, 9.9)
        with pytest.raises(RuntimeError):
            controller.release_due(50_000, 60_000)

    def test_release_due_rejects_empty_window(self):
        controller, _ = make_controller()
        with pytest.raises(ValueError):
            controller.release_due(10, 10)


class TestBroadcast:
    def test_broadcast_fans_out_to_all_other_nodes(self):
        controller, _ = make_controller(num_nodes=4)
        packet = Packet(src=1, dst=BROADCAST, size_bytes=100, send_time=0)
        decisions = controller.submit(packet, sender_host_time=0.0)
        assert sorted(d.packet.dst for d in decisions) == [0, 2, 3]
        assert controller.stats.broadcast_fanouts == 1
        assert controller.stats.packets_routed == 3

    def test_destination_out_of_range(self):
        controller, _ = make_controller(num_nodes=2)
        packet = Packet(src=0, dst=7, size_bytes=100, send_time=0)
        with pytest.raises(ValueError):
            controller.submit(packet, 0.0)


class TestAccounting:
    def test_np_counts_and_resets(self):
        controller, _ = make_controller()
        controller.submit(Packet(src=0, dst=1, size_bytes=10, send_time=0), 0.0)
        controller.submit(Packet(src=1, dst=0, size_bytes=10, send_time=0), 0.0)
        assert controller.packets_this_quantum == 2
        assert controller.end_quantum() == 2
        assert controller.packets_this_quantum == 0
        assert controller.end_quantum() == 0
        assert controller.stats.quanta_seen == 2
        assert controller.stats.busy_quanta == 1

    def test_note_idle_quanta(self):
        controller, _ = make_controller()
        controller.note_idle_quanta(100)
        assert controller.stats.quanta_seen == 100
        with pytest.raises(ValueError):
            controller.note_idle_quanta(-1)

    def test_delay_error_statistics(self):
        controller, _ = make_controller()
        controller.submit(Packet(src=0, dst=1, size_bytes=10, send_time=2000), 6.0)
        stats = controller.stats
        assert stats.stragglers == 1
        assert stats.total_delay_error == 3000
        assert stats.max_delay_error == 3000
        assert stats.mean_delay_error() == 3000
        assert stats.straggler_fraction == 1.0

    def test_trace_callback_sees_every_copy(self):
        seen = []
        cluster = FakeCluster(0, 10_000, [1000] * 3)
        controller = NetworkController(
            3, UniformLatencyModel(1000), trace=lambda t, s, d, b: seen.append((t, s, d, b))
        )
        controller.bind(cluster)
        controller.submit(Packet(src=0, dst=BROADCAST, size_bytes=64, send_time=5), 0.0)
        assert len(seen) == 2
        assert {entry[2] for entry in seen} == {1, 2}

    def test_unbound_controller_rejects_submit(self):
        controller = NetworkController(2, UniformLatencyModel(1000))
        with pytest.raises(RuntimeError):
            controller.submit(Packet(src=0, dst=1, size_bytes=10, send_time=0), 0.0)

    def test_empty_stats_are_zero(self):
        controller, _ = make_controller()
        assert controller.stats.straggler_fraction == 0.0
        assert controller.stats.mean_delay_error() == 0.0
        assert controller.next_held_time() is None
