"""Trace diff against the Q<=T ground truth (the paper's Section 5 claim).

Acceptance property: diffing an adaptive run against the conservative
ground truth reports zero lag for every non-straggler packet — the
adaptive quantum's *only* per-packet accuracy cost is straggler lag.
"""

from __future__ import annotations

import pytest

from repro.core.quantum import AdaptiveQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.harness.configs import PolicySpec, ground_truth_policy
from repro.harness.experiment import ExperimentRunner
from repro.obs.collector import TraceCollector, TraceConfig
from repro.obs.diff import diff_traces
from repro.obs.events import PacketTrace
from repro.workloads import IsWorkload, PingPongWorkload

SEED = 7


@pytest.fixture(scope="module")
def is_pair():
    """(adaptive record, ground-truth record) for a 4-node IS run."""
    runner = ExperimentRunner(seed=SEED, trace=TraceConfig(), check=True)
    workload = IsWorkload(total_keys=2**15, iterations=2, ops_per_key=16)
    truth = runner.run_spec(workload, 4, ground_truth_policy())
    # An aggressive grow/slow shrink keeps the quantum above T through
    # IS's bursts, so the run actually produces stragglers to attribute.
    adaptive = runner.run_spec(
        workload,
        4,
        PolicySpec(
            "dyn",
            lambda: AdaptiveQuantumPolicy(
                MICROSECOND, 1000 * MICROSECOND, inc=1.3, dec=0.9
            ),
        ),
    )
    return adaptive, truth


class TestDiffAgainstGroundTruth:
    def test_zero_lag_for_non_stragglers(self, is_pair):
        adaptive, truth = is_pair
        diff = diff_traces(adaptive.obs, truth.obs)
        assert diff.matched, "expected the traces to align"
        assert diff.non_straggler_lag_violations() == []

    def test_every_frame_aligns(self, is_pair):
        adaptive, truth = is_pair
        diff = diff_traces(adaptive.obs, truth.obs)
        # Same workload, same seed, no faults: both executions exchange
        # exactly the same frames.
        assert diff.only_in_run == 0
        assert diff.only_in_truth == 0
        assert len(diff.matched) == adaptive.result.controller_stats.packets_routed

    def test_straggler_totals_match_stats(self, is_pair):
        adaptive, truth = is_pair
        diff = diff_traces(adaptive.obs, truth.obs)
        stats = adaptive.result.controller_stats
        assert diff.straggler_count == stats.stragglers
        assert diff.lag_total == stats.total_delay_error
        assert diff.max_lag == stats.max_delay_error

    def test_ground_truth_self_diff_is_exact(self, is_pair):
        _, truth = is_pair
        diff = diff_traces(truth.obs, truth.obs)
        assert diff.straggler_count == 0
        assert diff.lag_total == 0
        assert all(lag.skew == 0 for lag in diff.matched)

    def test_phase_attribution_sums_to_totals(self, is_pair):
        adaptive, truth = is_pair
        diff = diff_traces(adaptive.obs, truth.obs)
        rows = diff.phase_attribution(phases=6)
        assert len(rows) == 6
        assert sum(row.packets for row in rows) == len(diff.matched)
        assert sum(row.stragglers for row in rows) == diff.straggler_count
        assert sum(row.lag_total for row in rows) == diff.lag_total
        with pytest.raises(ValueError):
            diff.phase_attribution(phases=0)

    def test_render_smoke(self, is_pair):
        adaptive, truth = is_pair
        text = diff_traces(adaptive.obs, truth.obs, "dyn", "1us").render()
        assert "trace diff: dyn vs 1us" in text
        assert "non-straggler lag violations: 0" in text
        assert "Per-phase error attribution" in text

    def test_lag_percentiles_monotone(self, is_pair):
        adaptive, truth = is_pair
        diff = diff_traces(adaptive.obs, truth.obs)
        percentiles = diff.lag_percentiles()
        if diff.straggler_count:
            assert percentiles[50] <= percentiles[90] <= percentiles[99]
            assert percentiles[99] <= diff.max_lag
        else:
            assert percentiles == {50: 0, 90: 0, 99: 0}


class TestDiffMechanics:
    def _packet(self, message_id, fragment=0, lag=0, deliver=100, retransmit=0):
        return PacketTrace(
            time=0,
            src=0,
            dst=1,
            size_bytes=64,
            due_time=deliver - lag,
            deliver_time=deliver,
            delivery="straggler-now" if lag else "exact-future",
            lag=lag,
            straggler=bool(lag),
            message_id=message_id,
            fragment=fragment,
            retransmit=retransmit,
            packet_kind="data",
            packet_id=message_id * 10 + fragment,
            index=0,
        )

    def test_unmatched_frames_are_counted_not_matched(self):
        run = [self._packet(1), self._packet(2, lag=50)]
        truth = [self._packet(1), self._packet(3)]
        diff = diff_traces(run, truth)
        assert len(diff.matched) == 1
        assert diff.only_in_run == 1  # message 2 never happened in truth
        assert diff.only_in_truth == 1  # message 3 never happened in run

    def test_duplicate_identities_match_by_occurrence(self):
        # A retransmitted-but-identical identity occurs twice on each side.
        run = [self._packet(5, deliver=100), self._packet(5, deliver=220)]
        truth = [self._packet(5, deliver=100), self._packet(5, deliver=200)]
        diff = diff_traces(run, truth)
        assert len(diff.matched) == 2
        assert [lag.occurrence for lag in diff.matched] == [0, 1]
        assert [lag.skew for lag in diff.matched] == [0, 20]

    def test_shedding_ring_refuses_to_diff(self):
        runner = ExperimentRunner(seed=SEED, trace=TraceConfig(capacity=8))
        workload = PingPongWorkload()
        record = runner.run_spec(
            workload,
            2,
            PolicySpec(
                "dyn",
                lambda: AdaptiveQuantumPolicy(MICROSECOND, 1000 * MICROSECOND),
            ),
        )
        assert record.obs.dropped > 0
        with pytest.raises(ValueError, match="shed"):
            diff_traces(record.obs, record.obs)

    def test_skew_reflects_knock_on_drift(self, is_pair):
        adaptive, truth = is_pair
        diff = diff_traces(adaptive.obs, truth.obs)
        if diff.straggler_count == 0:
            pytest.skip("this configuration produced no stragglers")
        # Any frame with nonzero lag must also show skew at least as
        # large as nothing (skew may cancel, but the totals correlate).
        assert any(lag.skew != 0 for lag in diff.matched)


class TestEmptyDiff:
    def test_empty_traces(self):
        diff = diff_traces([], [])
        assert diff.matched == []
        assert diff.only_in_run == 0 and diff.only_in_truth == 0
        assert diff.phase_attribution() == []
        assert diff.max_lag == 0
        text = diff.render()
        assert "matched 0 frames" in text

    def test_collector_sources_accepted(self):
        empty = TraceCollector(TraceConfig())
        diff = diff_traces(empty, empty)
        assert diff.matched == []
