# dest: src/repro/shard/bad_accounting.py
# expect: SIM023:16 SIM023:17
# Worker-side mutation of parent-only accounting state.
import multiprocessing


def launch(sim):
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_worker, args=(sim, child))
    proc.start()
    return parent


def _worker(sim, conn):
    sim.perf.quanta += 1
    sim.quantum_stats.record(4)
    conn.send(None)
