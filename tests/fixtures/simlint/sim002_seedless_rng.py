# dest: src/repro/core/rng_leak.py
# expect: SIM002:10 SIM002:11
# Seedless/direct RNG construction outside engine/rng.py (the v2 SIM002 gap).
import random

import numpy


def make(seed):
    unseeded = random.Random()
    legacy = numpy.random.RandomState(seed)
    return unseeded, legacy
