# dest: src/repro/shard/bad_driver.py
# expect: SIM020:27
# A worker-side write to a parent-owned shared-memory array.
import multiprocessing
from multiprocessing.sharedctypes import RawArray

_STEP = "step"

SHM_OWNERS = {"rates": "parent", "times": "worker"}


def launch(num):
    rates = RawArray("d", num)
    times = RawArray("q", num)
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_worker, args=(child, rates, times))
    proc.start()
    parent.send((_STEP, 0))
    return parent.recv()


def _worker(conn, rates, times):
    while True:
        op, node = conn.recv()
        if op == _STEP:
            rates[node] = 0.0
            times[node] = 7
            conn.send((_STEP, node))
        else:
            break
