# dest: src/repro/core/sched_leak.py
# expect: SIM001:8 SIM010:13 SIM014:12
# A wall-clock stamp laundered through a helper into event scheduling.
import time


def _stamp():
    return time.time()


def kick(engine):
    due = _stamp()
    engine.schedule(due, None)
