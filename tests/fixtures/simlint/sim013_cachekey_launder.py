# dest: src/repro/harness/key_leak.py
# expect: SIM013:15
# The laundered wall-clock -> cache-key flow: SIM001 stays silent (the
# harness may time things), and no single file shows the whole path —
# only the whole-program pass can connect the read to the key.
import time


def _now():
    return time.time()


class Settings:
    def key_fragment(self, size):
        return {"size": size, "stamp": _now()}
