# dest: src/repro/obs/trace_leak.py
# expect: SIM012:8
# A host hash() value stamped into a trace-event payload.
from repro.obs.events import PacketTrace


def emit(collector, packet):
    collector.record(PacketTrace(packet_id=hash(packet)))
