# dest: src/repro/shard/bad_protocol.py
# expect: SIM021:16
# A parent-sent command tag the worker dispatch never handles.
import multiprocessing

_PING = "ping"
_FLUSH = "flush"


def drive():
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_worker, args=(child,))
    proc.start()
    parent.send((_PING,))
    parent.send((_FLUSH,))
    return parent.recv()


def _worker(conn):
    while True:
        command = conn.recv()
        op = command[0]
        if op == _PING:
            conn.send((_PING,))
