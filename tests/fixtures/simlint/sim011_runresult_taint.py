# dest: src/repro/core/result_leak.py
# expect: SIM002:8 SIM011:9
# An unseeded draw flowing into the run's observable result.
import random


def finish(stats):
    jitter = random.random()
    return RunResult(sim_time=jitter, stats=stats)
