# dest: src/repro/node/locky.py
# expect: SIM022:9
# A lock constructed in a fork-inherited simulation object.
import threading


class NodeMailbox:
    def __init__(self):
        self._lock = threading.Lock()
