# dest: src/repro/core/ambient_leak.py
# expect: SIM014:8 SIM014:12
# Ambient host state (cpu_count) read by — and reached from — sim core.
import os


def _pool_width():
    return os.cpu_count() or 1


def plan_layout(nodes):
    width = _pool_width()
    return [nodes[i::width] for i in range(width)]
