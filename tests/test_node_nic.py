"""Tests for the NIC model: pacing, fragmentation, reassembly, mailbox."""

import pytest

from repro.network.packet import FRAME_HEADER_BYTES, Packet
from repro.node import NicModel, Recv
from repro.node.requests import ANY_SOURCE, ANY_TAG


def delivered(packet, deliver=None):
    """Stamp a frame as the controller would, for direct NIC testing."""
    packet.due_time = packet.send_time + 1000
    packet.deliver_time = deliver if deliver is not None else packet.due_time
    return packet


class TestTransmit:
    def test_single_frame_message(self):
        nic = NicModel(0)
        frames = nic.build_frames(dst=1, nbytes=100, tag=5, payload="x", now=50)
        assert len(frames) == 1
        frame = frames[0]
        assert frame.send_time == 50
        assert frame.size_bytes == 100 + FRAME_HEADER_BYTES
        assert frame.last_fragment
        assert frame.payload == (5, 100, "x")

    def test_fragments_are_paced_at_line_rate(self):
        nic = NicModel(0, bandwidth_bits_per_sec=10e9)
        frames = nic.build_frames(dst=1, nbytes=20_000, tag=0, payload=None, now=0)
        assert len(frames) == 3
        for previous, following in zip(frames, frames[1:]):
            gap = following.send_time - previous.send_time
            assert gap == nic.serialization(previous.size_bytes)

    def test_tx_queue_backpressure_across_messages(self):
        nic = NicModel(0)
        first = nic.build_frames(dst=1, nbytes=8000, tag=0, payload=None, now=0)
        second = nic.build_frames(dst=1, nbytes=100, tag=0, payload=None, now=0)
        wire_end = first[0].send_time + nic.serialization(first[0].size_bytes)
        assert second[0].send_time == wire_end

    def test_idle_nic_sends_immediately(self):
        nic = NicModel(0)
        nic.build_frames(dst=1, nbytes=100, tag=0, payload=None, now=0)
        later = nic.build_frames(dst=1, nbytes=100, tag=0, payload=None, now=1_000_000)
        assert later[0].send_time == 1_000_000

    def test_message_ids_unique_and_increasing(self):
        nic = NicModel(0)
        a = nic.build_frames(dst=1, nbytes=1, tag=0, payload=None, now=0)[0]
        b = nic.build_frames(dst=1, nbytes=1, tag=0, payload=None, now=0)[0]
        assert b.message_id > a.message_id

    def test_stats(self):
        nic = NicModel(0)
        nic.build_frames(dst=1, nbytes=20_000, tag=0, payload=None, now=0)
        assert nic.stats.messages_sent == 1
        assert nic.stats.frames_sent == 3


class TestReceive:
    def test_single_fragment_message_completes(self):
        sender = NicModel(0)
        receiver = NicModel(1)
        frame = sender.build_frames(dst=1, nbytes=64, tag=9, payload="hi", now=10)[0]
        message = receiver.receive_fragment(delivered(frame))
        assert message is not None
        assert message.src == 0
        assert message.tag == 9
        assert message.payload == "hi"
        assert message.arrived_at == frame.deliver_time
        assert message.delay_error == 0
        assert receiver.mailbox == [message]

    def test_multi_fragment_completion_at_last_arrival(self):
        sender = NicModel(0)
        receiver = NicModel(1)
        frames = sender.build_frames(dst=1, nbytes=20_000, tag=0, payload="p", now=0)
        assert receiver.receive_fragment(delivered(frames[0])) is None
        assert receiver.pending_reassemblies() == 1
        assert receiver.receive_fragment(delivered(frames[1])) is None
        message = receiver.receive_fragment(delivered(frames[2], deliver=frames[2].send_time + 5000))
        assert message is not None
        assert message.fragments == 3
        assert message.arrived_at == frames[2].send_time + 5000
        assert message.delay_error == 4000
        assert receiver.pending_reassemblies() == 0

    def test_out_of_order_fragments(self):
        sender = NicModel(0)
        receiver = NicModel(1)
        frames = sender.build_frames(dst=1, nbytes=20_000, tag=3, payload="z", now=0)
        assert receiver.receive_fragment(delivered(frames[2])) is None
        assert receiver.receive_fragment(delivered(frames[0])) is None
        message = receiver.receive_fragment(delivered(frames[1]))
        assert message is not None
        assert message.tag == 3

    def test_interleaved_messages_reassemble_separately(self):
        sender = NicModel(0)
        receiver = NicModel(1)
        first = sender.build_frames(dst=1, nbytes=10_000, tag=1, payload="a", now=0)
        second = sender.build_frames(dst=1, nbytes=10_000, tag=2, payload="b", now=0)
        assert receiver.receive_fragment(delivered(first[0])) is None
        assert receiver.receive_fragment(delivered(second[0])) is None
        got_first = receiver.receive_fragment(delivered(first[1]))
        got_second = receiver.receive_fragment(delivered(second[1]))
        assert got_first.tag == 1 and got_second.tag == 2

    def test_unstamped_fragment_rejected(self):
        receiver = NicModel(1)
        with pytest.raises(ValueError):
            receiver.receive_fragment(Packet(src=0, dst=1, size_bytes=10, send_time=0))


class TestMailbox:
    def fill(self, receiver):
        sender = NicModel(0)
        other = NicModel(2)
        for nic, tag in ((sender, 1), (other, 2), (sender, 3)):
            frame = nic.build_frames(dst=1, nbytes=8, tag=tag, payload=None, now=0)[0]
            receiver.receive_fragment(delivered(frame))

    def test_wildcard_match_is_fifo(self):
        receiver = NicModel(1)
        self.fill(receiver)
        message = receiver.match(Recv(src=ANY_SOURCE, tag=ANY_TAG))
        assert message.tag == 1

    def test_match_by_source(self):
        receiver = NicModel(1)
        self.fill(receiver)
        message = receiver.match(Recv(src=2))
        assert message.src == 2
        assert len(receiver.mailbox) == 2

    def test_match_by_tag(self):
        receiver = NicModel(1)
        self.fill(receiver)
        message = receiver.match(Recv(tag=3))
        assert message.tag == 3

    def test_no_match_returns_none(self):
        receiver = NicModel(1)
        self.fill(receiver)
        assert receiver.match(Recv(src=7)) is None
        assert len(receiver.mailbox) == 3
