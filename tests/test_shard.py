"""Sharded single-run execution: partitioning, bit-identity, fallbacks.

The acceptance gate of :mod:`repro.shard` is the same as the vectorized
stepper's: sharded execution is an *acceleration*, never an
approximation.  The matrix here runs 30+ configurations (paper workloads
x cluster sizes x quantum policies x shard counts, including checked,
recovery-transport, traced, and faulted variants) through
:func:`repro.shard.run_sharded` and asserts the :class:`RunResult` is
equal field-for-field to a serial run of the identical configuration —
whether the run actually sharded or degraded to the serial fallback
(whose reason is asserted too).

Also covered: the partitioner's exactly-once/deterministic guarantees,
``REPRO_SHARDS`` resolution, and the requirement that the shard count
never enters harness cache keys (shards=1 keys must be byte-identical to
the pre-shard serial path's).
"""

from __future__ import annotations

import json

import pytest

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.core.quantum import AdaptiveQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.faults.plan import load_plan
from repro.harness.configs import ground_truth_policy
from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import RunnerSettings, RunSpec
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.node.transport import RecoveryConfig, TransportConfig
from repro.obs.collector import TraceConfig
from repro.shard import SHARDS_ENV, partition_nodes, resolve_shards, run_sharded
import repro.shard.driver as shard_driver
from repro.workloads import EpWorkload, IsWorkload, NamdWorkload

US = MICROSECOND

WORKLOADS = {
    "EP": lambda size: EpWorkload().build_apps(size),
    "IS": lambda size: IsWorkload().build_apps(size),
    "NAMD": lambda size: NamdWorkload().build_apps(size),
}


def _factory(
    apps_factory,
    size,
    policy_factory,
    *,
    seed=7,
    check=None,
    faults=None,
    trace=False,
    transport=None,
    shards=None,
):
    def build():
        nodes = [
            SimulatedNode(i, app, transport=transport)
            for i, app in enumerate(apps_factory(size))
        ]
        controller = NetworkController(size, PAPER_NETWORK(size))
        config = ClusterConfig(
            seed=seed,
            check=check,
            faults=faults,
            trace=TraceConfig() if trace else None,
            shards=shards,
        )
        return ClusterSimulator(nodes, controller, policy_factory(), config)

    return build


def _assert_identical(
    apps_factory,
    size,
    policy_factory,
    shards,
    *,
    expect_sharded=True,
    expect_reason=None,
    **kwargs,
):
    build = _factory(apps_factory, size, policy_factory, **kwargs)
    serial = build().run()
    outcome = run_sharded(build, shards=shards)
    if expect_sharded:
        assert outcome.fallback_reason is None
        assert outcome.shards == min(shards, size)
    else:
        assert outcome.shards == 1
        assert outcome.fallback_reason is not None
        if expect_reason is not None:
            assert expect_reason in outcome.fallback_reason
    assert serial.completed and outcome.result.completed
    assert serial == outcome.result


# ---------------------------------------------------------------------- #
# Partitioner
# ---------------------------------------------------------------------- #


def test_partition_covers_every_node_exactly_once():
    for num_nodes in range(1, 40):
        for shards in range(1, 10):
            slices = partition_nodes(num_nodes, shards)
            assert len(slices) == min(shards, num_nodes)
            flat = [node for span in slices for node in span]
            assert flat == list(range(num_nodes))  # exactly once, in order
            sizes = [len(span) for span in slices]
            assert max(sizes) - min(sizes) <= 1  # balanced


def test_partition_is_deterministic():
    # Pure integer arithmetic — no dict/set iteration, no hashing — so
    # repeated calls (and any interpreter) yield the identical layout.
    expected = [range(0, 16), range(16, 32), range(32, 48), range(48, 64)]
    for _ in range(3):
        assert partition_nodes(64, 4) == expected
    assert partition_nodes(10, 3) == [range(0, 4), range(4, 7), range(7, 10)]


def test_partition_rejects_invalid_inputs():
    with pytest.raises(ValueError):
        partition_nodes(0, 2)
    with pytest.raises(ValueError):
        partition_nodes(8, 0)


def test_resolve_shards(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV, raising=False)
    assert resolve_shards() == 1
    assert resolve_shards(3) == 3
    monkeypatch.setenv(SHARDS_ENV, "4")
    assert resolve_shards() == 4
    assert resolve_shards(2) == 2  # explicit beats environment
    monkeypatch.setenv(SHARDS_ENV, "not-a-number")
    assert resolve_shards() == 1
    monkeypatch.setenv(SHARDS_ENV, "0")
    assert resolve_shards() == 1
    with pytest.raises(ValueError):
        resolve_shards(0)


# ---------------------------------------------------------------------- #
# Cache keys: the shard count must never reach them
# ---------------------------------------------------------------------- #


def test_shards_absent_from_cache_keys():
    plain = RunnerSettings()
    sharded = RunnerSettings(shards=4)
    for size in (2, 8, 64):
        a = json.dumps(plain.key_fragment(size), sort_keys=True)
        b = json.dumps(sharded.key_fragment(size), sort_keys=True)
        assert a == b  # byte-identical to the pre-shard serial path
    spec_plain = RunSpec(
        workload=IsWorkload(), size=8, policy=ground_truth_policy().build(),
        label="1", settings=plain,
    )
    spec_sharded = RunSpec(
        workload=IsWorkload(), size=8, policy=ground_truth_policy().build(),
        label="1", settings=sharded,
    )
    assert json.dumps(spec_plain.key_payload(), sort_keys=True) == json.dumps(
        spec_sharded.key_payload(), sort_keys=True
    )


# ---------------------------------------------------------------------- #
# Bit-identity matrix (30+ configurations with the fallback tests below)
# ---------------------------------------------------------------------- #


def test_sharded_matrix_is_bit_identical():
    """3 workloads x 3 sizes x 3 shard counts = 27 truly-sharded configs
    (at size 2 the count clamps to 2 workers), all at the ground-truth
    quantum where every window is a drain window."""
    configs = 0
    for apps_factory in WORKLOADS.values():
        for size in (2, 4, 8):
            for shards in (2, 3, 4):
                _assert_identical(
                    apps_factory, size, lambda: FixedQuantumPolicy(US), shards
                )
                configs += 1
    assert configs == 27


def test_checked_sharded_runs_are_bit_identical():
    """The causality sanitizer audits both sides of the barrier split
    (per-shard queue/clock invariants in the workers, window/accounting
    invariants in the parent) without changing results."""
    for apps_factory in WORKLOADS.values():
        for shards in (2, 4):
            _assert_identical(
                apps_factory, 4, lambda: FixedQuantumPolicy(US), shards,
                check=True,
            )


def test_recovery_transport_sharded_runs_are_bit_identical():
    """Delayed-ack/RTO timer events drain inside shard workers, and the
    per-node transport stats are reassembled across shard boundaries."""
    transport = TransportConfig(recovery=RecoveryConfig())
    for shards in (2, 4):
        _assert_identical(
            WORKLOADS["IS"], 8, lambda: FixedQuantumPolicy(US), shards,
            transport=transport,
        )


# ---------------------------------------------------------------------- #
# Serial fallbacks: bit-identical, and the reason is surfaced
# ---------------------------------------------------------------------- #


def test_wide_quantum_policies_fall_back_serially():
    # Q > T: windows are not drain windows, so nodes could interact
    # mid-window and the shard split would be unsound.  10 us fixed and
    # the adaptive policy (max 1000 us) both exceed T = 1.053 us.
    _assert_identical(
        WORKLOADS["IS"], 4, lambda: FixedQuantumPolicy(10 * US), 2,
        expect_sharded=False, expect_reason="exceeds the minimum network latency",
    )
    _assert_identical(
        WORKLOADS["NAMD"], 4,
        lambda: AdaptiveQuantumPolicy(US, 1000 * US, inc=1.03, dec=0.02), 2,
        expect_sharded=False, expect_reason="exceeds the minimum network latency",
    )


def test_traced_runs_fall_back_serially():
    _assert_identical(
        WORKLOADS["IS"], 4, lambda: FixedQuantumPolicy(US), 2,
        trace=True, expect_sharded=False, expect_reason="traced",
    )


def test_faulted_runs_fall_back_serially():
    _assert_identical(
        WORKLOADS["IS"], 4, lambda: FixedQuantumPolicy(US), 2,
        faults=load_plan("lossy-1"),
        transport=TransportConfig(recovery=RecoveryConfig()),
        expect_sharded=False, expect_reason="fault-injected",
    )


def test_shards_one_is_the_plain_serial_path():
    build = _factory(WORKLOADS["IS"], 4, lambda: FixedQuantumPolicy(US))
    outcome = run_sharded(build, shards=1)
    assert outcome.shards == 1
    assert outcome.fallback_reason is None  # not a fallback: never requested


def test_env_shards_is_honored(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV, "2")
    build = _factory(WORKLOADS["IS"], 8, lambda: FixedQuantumPolicy(US))
    serial = _factory(WORKLOADS["IS"], 8, lambda: FixedQuantumPolicy(US))().run()
    outcome = run_sharded(build)  # no explicit count: config None -> env
    assert outcome.shards == 2
    assert serial == outcome.result


def test_fork_unavailable_falls_back(monkeypatch):
    monkeypatch.setattr(shard_driver, "_fork_available", lambda: False)
    _assert_identical(
        WORKLOADS["IS"], 4, lambda: FixedQuantumPolicy(US), 2,
        expect_sharded=False, expect_reason="fork start method unavailable",
    )


def test_midflight_worker_failure_reruns_serially(monkeypatch):
    def boom(*args, **kwargs):
        raise OSError("synthetic pipe failure")

    monkeypatch.setattr(shard_driver, "_parent_loop", boom)
    build = _factory(WORKLOADS["IS"], 8, lambda: FixedQuantumPolicy(US))
    serial = build().run()
    outcome = run_sharded(build, shards=2)
    assert outcome.shards == 1
    assert "re-ran serially" in outcome.fallback_reason
    assert "synthetic pipe failure" in outcome.fallback_reason
    assert serial == outcome.result


# ---------------------------------------------------------------------- #
# Harness integration
# ---------------------------------------------------------------------- #


def test_experiment_runner_shards_are_bit_identical():
    workload = IsWorkload()
    serial = ExperimentRunner(seed=7).run_spec(
        workload, 8, ground_truth_policy()
    )
    runner = ExperimentRunner(seed=7, shards=2)
    sharded = runner.run_spec(workload, 8, ground_truth_policy())
    assert runner.last_shard_fallback_reason is None
    assert serial.result == sharded.result
    assert serial.metric == sharded.metric


def test_experiment_runner_surfaces_fallback_reason():
    from repro.harness.configs import PolicySpec

    runner = ExperimentRunner(seed=7, shards=2)
    spec = PolicySpec("10", lambda: FixedQuantumPolicy(10 * US))
    serial = ExperimentRunner(seed=7).run_spec(IsWorkload(), 4, spec)
    record = runner.run_spec(IsWorkload(), 4, spec)
    assert runner.last_shard_fallback_reason is not None
    assert "exceeds the minimum network latency" in runner.last_shard_fallback_reason
    assert serial.result == record.result
