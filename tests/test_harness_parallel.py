"""Tests for the parallel experiment farm: fan-out, cache, equivalence.

The load-bearing guarantees:

* the parallel path is byte-identical to the serial one (same seeds, same
  ``ComparisonRow`` values, regardless of worker count or completion
  order),
* the disk cache never changes a result — a hit reproduces the record
  exactly, and any stale/corrupt/mismatched entry is ignored and
  recomputed,
* ``REPRO_PARALLEL`` and ``max_workers=1`` force the serial path.

Workload instances are deliberately tiny; the benchmarks measure the real
matrix.
"""

import json
import multiprocessing
import os
import signal

import pytest

from repro.harness.configs import paper_policies
from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import (
    CACHE_VERSION,
    DiskResultCache,
    ParallelRunner,
    RunnerSettings,
    RunSpec,
    record_from_json,
    record_to_json,
    resolve_workers,
)
from repro.workloads import EpWorkload, IsWorkload

SEED = 7


def small_ep():
    return EpWorkload(total_ops=2e7, chunks=4)


def small_is():
    return IsWorkload(total_keys=2**15, iterations=2, ops_per_key=16)


class KamikazeWorkload(EpWorkload):
    """EP workload that SIGKILLs the *pool worker* trying to run it.

    In the parent process (serial path, serial fallback) it behaves exactly
    like a small EP run.  With ``sentinel`` set, the first worker to touch
    it leaves a marker file before dying, so only one kill ever happens and
    a rebuilt pool completes the batch.
    """

    def __init__(self, sentinel: str = "") -> None:
        super().__init__(total_ops=2e7, chunks=4)
        self.sentinel = sentinel

    def build_apps(self, size):
        if multiprocessing.parent_process() is not None:
            if not self.sentinel:
                os.kill(os.getpid(), signal.SIGKILL)
            elif not os.path.exists(self.sentinel):
                with open(self.sentinel, "w"):
                    pass
                os.kill(os.getpid(), signal.SIGKILL)
        return super().build_apps(size)


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("make_workload", [small_ep, small_is])
    def test_matrix_identical_to_serial(self, make_workload, tmp_path):
        """parallel(max_workers=4) == serial, byte for byte, at 2-4 nodes."""
        specs = paper_policies()[:3]
        serial = ExperimentRunner(seed=SEED).run_matrix(
            make_workload(), (2, 4), specs
        )
        parallel = ParallelRunner(
            seed=SEED, max_workers=4, cache_dir=tmp_path / "cache"
        ).run_matrix(make_workload(), (2, 4), specs)
        assert parallel == serial

    def test_single_worker_is_serial_path(self, tmp_path):
        runner = ParallelRunner(
            seed=SEED, max_workers=1, cache_dir=tmp_path / "cache"
        )
        rows = runner.run_matrix(make_workload := small_ep(), (2,), paper_policies()[:2])
        assert rows == ExperimentRunner(seed=SEED).run_matrix(
            small_ep(), (2,), paper_policies()[:2]
        )
        # Everything (ground truth + 2 specs) ran in-process.
        assert {source for _, _, _, source in runner.last_batch_report} == {"serial"}
        assert make_workload.name == "EP"

    def test_results_in_request_order(self, tmp_path):
        runner = ParallelRunner(seed=SEED, max_workers=4, cache_dir=tmp_path / "c")
        specs = paper_policies()[:3]
        requests = [(small_ep(), size, spec) for size in (2, 3, 4) for spec in specs]
        records = runner.run_many(requests)
        assert [(r.size, r.policy_label) for r in records] == [
            (size, spec.label) for _, size, spec in requests
        ]


class TestEnvironmentOverrides:
    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " 0 "])
    def test_repro_parallel_forces_serial(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PARALLEL", value)
        assert resolve_workers(None) == 1
        assert resolve_workers(8) == 1

    def test_repro_parallel_pins_pool_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(16) == 3

    def test_unset_defers_to_max_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_workers(5) == 5
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_repro_parallel_serial_still_identical(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        runner = ParallelRunner(seed=SEED, cache_dir=tmp_path / "c")
        rows = runner.run_matrix(small_ep(), (2,), paper_policies()[:1])
        assert rows == ExperimentRunner(seed=SEED).run_matrix(
            small_ep(), (2,), paper_policies()[:1]
        )
        assert {s for _, _, _, s in runner.last_batch_report} == {"serial"}

    def test_repro_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert DiskResultCache().root == tmp_path / "envcache"


class TestDiskCache:
    def _payload_and_record(self, tmp_path):
        runner = ParallelRunner(seed=SEED, max_workers=1, cache_dir=tmp_path)
        spec = paper_policies()[0]
        record = runner.run_spec(small_ep(), 2, spec)
        payload = runner._spec_for(small_ep(), 2, spec).key_payload()
        return runner, payload, record

    def test_record_json_round_trip(self, tmp_path):
        _, _, record = self._payload_and_record(tmp_path)
        assert record_from_json(json.loads(json.dumps(record_to_json(record)))) == record

    def test_second_run_hits_cache_with_identical_record(self, tmp_path):
        _, payload, record = self._payload_and_record(tmp_path)
        warm = ParallelRunner(seed=SEED, max_workers=1, cache_dir=tmp_path)
        assert warm.run_spec(small_ep(), 2, paper_policies()[0]) == record
        assert warm.cache is not None
        assert (warm.cache.hits, warm.cache.misses) == (1, 0)
        assert warm.cache.get(payload) == record

    def test_poisoned_entry_is_ignored_and_recomputed(self, tmp_path):
        runner, payload, record = self._payload_and_record(tmp_path)
        assert runner.cache is not None
        path = runner.cache._path(payload)
        assert path.exists()

        # Poison the stored record: a trusted read would return garbage.
        entry = json.loads(path.read_text())
        entry["record"]["metric"] = -1.0
        entry["key"]["size"] = 999  # key no longer matches the payload
        path.write_text(json.dumps(entry))

        fresh = ParallelRunner(seed=SEED, max_workers=1, cache_dir=tmp_path)
        recomputed = fresh.run_spec(small_ep(), 2, paper_policies()[0])
        assert recomputed == record  # not the poisoned value
        assert fresh.cache is not None and fresh.cache.misses == 1
        # ... and the bad entry was overwritten with a good one.
        assert json.loads(path.read_text())["record"]["metric"] == record.metric

    def test_version_bump_invalidates(self, tmp_path):
        runner, payload, record = self._payload_and_record(tmp_path)
        path = runner.cache._path(payload)
        entry = json.loads(path.read_text())
        entry["cache_version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(entry))
        fresh = ParallelRunner(seed=SEED, max_workers=1, cache_dir=tmp_path)
        assert fresh.run_spec(small_ep(), 2, paper_policies()[0]) == record
        assert fresh.cache.misses == 1

    def test_unreadable_entry_is_quarantined(self, tmp_path):
        """Unparseable JSON is moved aside, not retried on every lookup."""
        runner, payload, record = self._payload_and_record(tmp_path)
        path = runner.cache._path(payload)
        path.write_text("{definitely not json")
        fresh = ParallelRunner(seed=SEED, max_workers=1, cache_dir=tmp_path)
        assert fresh.run_spec(small_ep(), 2, paper_policies()[0]) == record
        assert fresh.cache is not None and fresh.cache.misses == 1
        assert path.with_suffix(".corrupt").exists()
        # The slot was rewritten with a good entry by the recompute.
        assert json.loads(path.read_text())["record"]["metric"] == record.metric

    def test_mismatched_entry_is_not_quarantined(self, tmp_path):
        """Valid-but-stale entries are plain misses: no ``.corrupt`` litter."""
        runner, payload, record = self._payload_and_record(tmp_path)
        path = runner.cache._path(payload)
        entry = json.loads(path.read_text())
        entry["cache_version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(entry))
        fresh = ParallelRunner(seed=SEED, max_workers=1, cache_dir=tmp_path)
        assert fresh.run_spec(small_ep(), 2, paper_policies()[0]) == record
        assert not path.with_suffix(".corrupt").exists()

    def test_truncated_entry_is_a_miss(self, tmp_path):
        runner, payload, record = self._payload_and_record(tmp_path)
        path = runner.cache._path(payload)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        fresh = ParallelRunner(seed=SEED, max_workers=1, cache_dir=tmp_path)
        assert fresh.run_spec(small_ep(), 2, paper_policies()[0]) == record

    def test_key_separates_seed_and_size(self, tmp_path):
        settings = RunnerSettings(seed=1)
        spec = paper_policies()[0]
        base = RunSpec(small_ep(), 2, spec.build(), spec.label, settings)
        other_seed = RunSpec(
            small_ep(), 2, spec.build(), spec.label, RunnerSettings(seed=2)
        )
        other_size = RunSpec(small_ep(), 4, spec.build(), spec.label, settings)
        keys = {
            DiskResultCache.key_of(s.key_payload())
            for s in (base, other_seed, other_size)
        }
        assert len(keys) == 3

    def test_trace_runners_do_not_cache(self, tmp_path):
        runner = ParallelRunner(
            seed=SEED, record_traffic=True, cache_dir=tmp_path / "c"
        )
        assert runner.cache is None

    def test_batch_mixes_cache_hits_and_new_runs(self, tmp_path):
        specs = paper_policies()[:3]
        cold = ParallelRunner(seed=SEED, max_workers=1, cache_dir=tmp_path)
        cold.run_matrix(small_ep(), (2,), specs[:2])
        warm = ParallelRunner(seed=SEED, max_workers=1, cache_dir=tmp_path)
        rows = warm.run_matrix(small_ep(), (2,), specs)
        sources = {label: src for label, _, _, src in warm.last_batch_report}
        assert sources["1"] == "cache"  # ground truth reused
        assert sources[specs[0].label] == "cache"
        assert sources[specs[2].label] == "serial"  # the new point computed
        assert rows == ExperimentRunner(seed=SEED).run_matrix(
            small_ep(), (2,), specs
        )


class TestPoolRobustness:
    def test_unpicklable_settings_fall_back_to_serial(self, tmp_path):
        """A lambda latency factory cannot cross the process boundary."""
        from repro.network.latency import PAPER_NETWORK

        runner = ParallelRunner(
            seed=SEED,
            latency_factory=lambda size: PAPER_NETWORK(size),
            max_workers=2,
            use_cache=False,
        )
        rows = runner.run_matrix(small_ep(), (2,), paper_policies()[:2])
        expected = ExperimentRunner(
            seed=SEED, latency_factory=lambda size: PAPER_NETWORK(size)
        ).run_matrix(small_ep(), (2,), paper_policies()[:2])
        assert rows == expected
        assert any(
            source == "serial-fallback"
            for _, _, _, source in runner.last_batch_report
        )
        assert runner.last_fallback_reason is not None
        assert "not picklable" in runner.last_fallback_reason
        assert "lambda" in runner.last_fallback_reason  # names the culprit

    def _requests(self, workload_factory, specs):
        return [(workload_factory(), 2, spec) for spec in specs]

    def test_killed_worker_triggers_one_pool_rebuild(self, tmp_path):
        """One dead worker costs one rebuild; the pool finishes the batch."""
        sentinel = str(tmp_path / "killed-once")
        specs = paper_policies()[:3]
        runner = ParallelRunner(seed=SEED, max_workers=2, use_cache=False)
        records = runner.run_many(
            self._requests(lambda: KamikazeWorkload(sentinel=sentinel), specs)
        )
        assert os.path.exists(sentinel)  # a worker really was killed
        assert len(records) == 3 and all(r is not None for r in records)
        assert runner.last_fallback_reason == (
            "worker pool died mid-batch (attempt 1/2); rebuilding in 0.5s"
        )
        expected = ParallelRunner(seed=SEED, max_workers=1, use_cache=False).run_many(
            self._requests(KamikazeWorkload, specs)
        )
        assert records == expected

    def test_pool_dying_twice_falls_back_to_serial(self):
        """Workers that always die cannot abort the batch: serial finishes it."""
        specs = paper_policies()[:2]
        runner = ParallelRunner(seed=SEED, max_workers=2, use_cache=False)
        records = runner.run_many(self._requests(KamikazeWorkload, specs))
        assert len(records) == 2 and all(r is not None for r in records)
        assert runner.last_fallback_reason == (
            "worker pool died 2 times; finishing the batch serially"
        )
        assert any(
            source == "serial-fallback"
            for _, _, _, source in runner.last_batch_report
        )
        expected = ParallelRunner(seed=SEED, max_workers=1, use_cache=False).run_many(
            self._requests(KamikazeWorkload, specs)
        )
        assert records == expected
