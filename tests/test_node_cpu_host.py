"""Tests for the CPU timing model and the host execution model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.engine import RngStreams
from repro.node import CpuModel, HostExecutionModel, HostModelParams
from repro.node.hostmodel import BUSY, IDLE


class TestCpuModel:
    def test_defaults_are_paper_opteron(self):
        cpu = CpuModel()
        assert cpu.frequency_hz == pytest.approx(2.6e9)
        # 2.6e9 ops == one simulated second.
        assert cpu.compute_time(2.6e9) == 1_000_000_000

    def test_zero_ops_is_free(self):
        assert CpuModel().compute_time(0) == 0

    def test_tiny_work_rounds_up_to_1ns(self):
        assert CpuModel().compute_time(1) == 1

    def test_ipc_scales(self):
        wide = CpuModel(frequency_hz=1e9, ipc=4.0)
        narrow = CpuModel(frequency_hz=1e9, ipc=1.0)
        assert narrow.compute_time(4e9) == 4 * wide.compute_time(4e9)

    def test_ops_for_time_round_trip(self):
        cpu = CpuModel()
        ops = 1_000_000
        assert cpu.ops_for_time(cpu.compute_time(ops)) == pytest.approx(ops, rel=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CpuModel(frequency_hz=0)
        with pytest.raises(ValueError):
            CpuModel(ipc=-1)
        with pytest.raises(ValueError):
            CpuModel().compute_time(-1)
        with pytest.raises(ValueError):
            CpuModel().ops_for_time(-1)

    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    def test_property_monotone(self, ops):
        cpu = CpuModel()
        assert cpu.compute_time(ops) <= cpu.compute_time(ops + 1000)


class TestHostModelParams:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            HostModelParams(busy_slowdown=0)
        with pytest.raises(ValueError):
            HostModelParams(idle_slowdown=-1)
        with pytest.raises(ValueError):
            HostModelParams(jitter_sigma=-0.1)


class TestHostExecutionModel:
    def make(self, seed=1, **kwargs):
        return HostExecutionModel(0, HostModelParams(**kwargs), RngStreams(seed))

    def test_busy_slower_than_idle_on_average(self):
        model = self.make(busy_slowdown=20, idle_slowdown=1, jitter_sigma=0.2)
        busy = model.slowdowns(500, BUSY).mean()
        idle = model.slowdowns(500, IDLE).mean()
        assert busy > 10 * idle

    def test_no_jitter_is_deterministic(self):
        model = self.make(jitter_sigma=0.0, hetero_sigma=0.0)
        assert model.slowdown(BUSY) == 20.0
        assert list(model.slowdowns(5, IDLE)) == [1.0] * 5

    def test_jitter_mean_is_unbiased(self):
        model = self.make(jitter_sigma=0.3, hetero_sigma=0.0)
        draws = model.slowdowns(20_000, BUSY)
        assert draws.mean() == pytest.approx(20.0, rel=0.02)

    def test_reproducible_given_seed(self):
        first = self.make(seed=7).slowdowns(10, BUSY)
        second = self.make(seed=7).slowdowns(10, BUSY)
        assert np.array_equal(first, second)

    def test_nodes_differ(self):
        streams = RngStreams(3)
        params = HostModelParams()
        node0 = HostExecutionModel(0, params, streams)
        node1 = HostExecutionModel(1, params, streams)
        assert node0.slowdown(BUSY) != node1.slowdown(BUSY)

    def test_scalar_and_vector_share_stream(self):
        base = self.make(seed=11)
        mixed = [base.slowdown(BUSY)] + list(base.slowdowns(3, BUSY))
        replay = list(self.make(seed=11).slowdowns(4, BUSY))
        assert mixed == pytest.approx(replay)

    def test_unknown_activity_rejected(self):
        with pytest.raises(ValueError):
            self.make().slowdown("sleeping")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            self.make().slowdowns(-1, BUSY)

    def test_expected_max_grows_with_nodes(self):
        model = self.make(jitter_sigma=0.2)
        assert model.expected_max_slowdown(BUSY, 8) > model.expected_max_slowdown(BUSY, 2)
        assert model.expected_max_slowdown(BUSY, 1) == 20.0
        with pytest.raises(ValueError):
            model.expected_max_slowdown(BUSY, 0)

    def test_all_slowdowns_positive(self):
        model = self.make(jitter_sigma=0.5)
        assert (model.slowdowns(1000, BUSY) > 0).all()
