"""End-to-end tests for the open-loop service workload.

Covers the subsystem's whole contract: deterministic completion on every
driver (scalar, vectorized, sharded, checkpoint-resumed), the
``metric_kind="percentile"`` accuracy path, request-lifecycle tracing,
live progress reporting, and — critically — that adding the subsystem
changed no pre-existing cache key (locked against golden hashes).
"""

import dataclasses
import pickle

import pytest

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.engine.units import MICROSECOND, MILLISECOND
from repro.harness.configs import ground_truth_policy, paper_policies
from repro.harness.parallel import (
    DiskResultCache,
    RunnerSettings,
    RunSpec,
    record_from_json,
    record_to_json,
)
from repro.harness.report import service_report
from repro.harness.supervise import RunTimeout
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.obs.collector import TraceConfig
from repro.service import (
    ArrivalProfile,
    BurstWindow,
    ServiceStats,
    ServiceWorkload,
    TierModel,
    TierPlan,
    service_stats,
)
from repro.service.tiers import hash01
from repro.shard import run_sharded
from repro.workloads import EpWorkload, IsWorkload

US = MICROSECOND


def small_workload(**overrides):
    defaults = dict(
        profile=ArrivalProfile(rate_per_sec=50_000.0, num_requests=150),
        tier_weights=(1, 2),
        slo_ns=150_000,
    )
    defaults.update(overrides)
    return ServiceWorkload(**defaults)


def build_sim(workload, size, policy=None, **config_kwargs):
    nodes = [
        SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(size))
    ]
    controller = NetworkController(size, PAPER_NETWORK(size))
    return ClusterSimulator(
        nodes,
        controller,
        policy if policy is not None else FixedQuantumPolicy(US),
        ClusterConfig(seed=7, **config_kwargs),
    )


# --------------------------------------------------------------------- #
# Tier topology and service-time models
# --------------------------------------------------------------------- #


class TestTiers:
    def test_layout_splits_all_server_ranks(self):
        plan = TierPlan.layout(8, (1, 2, 4))
        assert plan.tiers == ((1,), (2, 3), (4, 5, 6, 7))
        assert plan.tier_of(0) == -1
        assert plan.tier_of(5) == 2

    def test_layout_requires_one_rank_per_tier(self):
        with pytest.raises(ValueError):
            TierPlan.layout(3, (1, 2, 4))
        plan = TierPlan.layout(4, (1, 2, 4))
        assert all(len(tier) == 1 for tier in plan.tiers)

    def test_route_is_deterministic_and_clamped(self):
        plan = TierPlan.layout(8, (1, 2, 4))
        first = plan.route(11, 1, 2)
        assert first == plan.route(11, 1, 2)
        assert len(first) == 2
        assert set(first) <= set(plan.tiers[2])
        assert len(plan.route(11, 1, 99)) == len(plan.tiers[2])

    def test_service_time_is_pure_and_bounded(self):
        model = TierModel(base_ns=5_000, jitter_ns=2_000, tail_prob=0.5, tail_factor=3.0)
        times = [model.service_time(r, 1, 4) for r in range(200)]
        assert times == [model.service_time(r, 1, 4) for r in range(200)]
        assert all(5_000 <= t <= 3 * 7_000 for t in times)
        # The heavy tail actually fires for some requests and not others.
        assert len({t >= 15_000 for t in times}) == 2

    def test_hash01_range(self):
        values = [hash01(r, 2, 5, salt=1) for r in range(500)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.3 < sum(values) / len(values) < 0.7


# --------------------------------------------------------------------- #
# Completion and bit-identity across drivers
# --------------------------------------------------------------------- #


class TestDeterminism:
    def test_completes_and_serves_every_request(self):
        workload = small_workload()
        result = build_sim(workload, 4).run()
        assert result.completed
        source = result.app_results[0]
        assert source["issued"] == 150
        assert len(source["latencies"]) == 150
        assert all(lat > 0 for lat in source["latencies"])
        served = [result.app_results[r]["served"] for r in range(1, 4)]
        assert served[0] == 150  # the single frontend serves everything

    def test_scalar_vectorized_bit_identical(self):
        results = []
        for vectorized in (False, True):
            workload = small_workload()
            results.append(
                build_sim(workload, 4, vectorized=vectorized).run()
            )
        assert dataclasses.asdict(results[0]) == dataclasses.asdict(results[1])

    def test_repeat_runs_bit_identical(self):
        first = build_sim(small_workload(), 4).run()
        second = build_sim(small_workload(), 4).run()
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_sharded_bit_identical_to_serial(self):
        def build():
            return build_sim(small_workload(), 4, shards=2)

        serial = build_sim(small_workload(), 4).run()
        outcome = run_sharded(build, shards=2)
        assert outcome.fallback_reason is None
        assert serial == outcome.result

    def test_checkpoint_resume_bit_identical(self, tmp_path):
        from repro.checkpoint import CheckpointConfig, restore_snapshot

        def factory():
            return build_sim(
                small_workload(),
                4,
                policy=FixedQuantumPolicy(100 * US),
                checkpoint=CheckpointConfig(directory=str(tmp_path), every_quanta=5),
            )

        sim = factory()
        snaps = []
        sim.checkpoint_sink = snaps.append
        reference = sim.run()
        assert reference.completed and snaps
        resumed_sim = factory()
        resumed_sim.checkpoint_sink = lambda _snap: None
        restore_snapshot(resumed_sim, snaps[len(snaps) // 2])
        resumed = resumed_sim.run()
        assert dataclasses.asdict(reference) == dataclasses.asdict(resumed)

    def test_modulated_profile_end_to_end(self):
        workload = small_workload(
            profile=ArrivalProfile(
                rate_per_sec=50_000.0,
                num_requests=120,
                diurnal_amplitude=0.4,
                diurnal_period=2 * MILLISECOND,
                bursts=(BurstWindow(MILLISECOND, 2 * MILLISECOND, 2.0),),
            )
        )
        result = build_sim(workload, 4).run()
        assert result.completed
        assert len(result.app_results[0]["latencies"]) == 120


# --------------------------------------------------------------------- #
# Percentile metric and accuracy path
# --------------------------------------------------------------------- #


class TestPercentileMetric:
    def test_metric_is_p99_in_microseconds(self):
        workload = small_workload()
        result = build_sim(workload, 4).run()
        latencies = sorted(result.app_results[0]["latencies"])
        expected_ns = latencies[min(990 * len(latencies) // 1000, len(latencies) - 1)]
        assert workload.metric(result) == expected_ns / 1000.0
        assert workload.metric_kind == "percentile"

    def test_accuracy_error_vs_ground_truth(self):
        truth_workload = small_workload()
        truth = build_sim(truth_workload, 4).run()
        coarse = build_sim(
            small_workload(), 4, policy=FixedQuantumPolicy(1000 * US)
        ).run()
        assert truth_workload.accuracy_error(truth, truth) == 0.0
        # Coarse quanta defer deliveries, so the client-observed tail
        # must dilate — a nonzero accuracy error against Q<=T.
        assert truth_workload.accuracy_error(coarse, truth) > 0.0

    def test_configurable_percentile_point(self):
        workload = small_workload(percentile=50.0)
        result = build_sim(workload, 4).run()
        latencies = sorted(result.app_results[0]["latencies"])
        assert workload.metric(result) == latencies[len(latencies) // 2] / 1000.0

    def test_service_summary_consistent_with_metric(self):
        workload = small_workload()
        result = build_sim(workload, 4).run()
        stats = workload.service_summary(result)
        assert stats.completed == stats.issued == 150
        assert stats.percentiles[99.0] / 1000.0 == workload.metric(result)
        assert 0.0 <= stats.slo_miss_rate <= 1.0

    def test_record_json_round_trip(self):
        # The latency sample must survive the disk result cache.
        from repro.harness.experiment import ExperimentRecord

        workload = small_workload()
        result = build_sim(workload, 4).run()
        record = ExperimentRecord(
            workload_name=workload.name,
            size=4,
            policy_label="1",
            seed=7,
            metric=workload.metric(result),
            result=result,
        )
        restored = record_from_json(record_to_json(record))
        assert workload.metric(restored.result) == record.metric
        assert restored.result.app_results[0]["latencies"] == (
            result.app_results[0]["latencies"]
        )


# --------------------------------------------------------------------- #
# Zero-request and rendering edge cases
# --------------------------------------------------------------------- #


class TestStatsRendering:
    def test_zero_request_stats(self):
        stats = service_stats([], issued=0, slo_ns=100_000)
        assert stats.slo_miss_rate == 0.0
        assert stats.max_latency_ns == 0
        assert stats.render() == "service: 0/0 requests completed"

    def test_zero_request_report_renders_dashes(self):
        empty = service_stats([], issued=5, slo_ns=100_000)
        full = service_stats([50_000, 200_000], issued=2, slo_ns=100_000)
        table = service_report([("empty", empty), ("full", full)])
        assert "0/5" in table and "-" in table
        assert "2/2" in table and "50.00%" in table

    def test_single_sample_stats(self):
        stats = service_stats([42_000], issued=1, slo_ns=100_000)
        assert set(stats.percentiles.values()) == {42_000}
        assert stats.slo_misses == 0
        assert stats.mean_latency_ns == 42_000.0

    def test_report_empty_input_is_empty_string(self):
        assert service_report([]) == ""

    def test_stats_is_frozen(self):
        stats = service_stats([1], issued=1, slo_ns=10)
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.completed = 5


# --------------------------------------------------------------------- #
# Cache keys: pre-existing keys locked, service keys stable
# --------------------------------------------------------------------- #


class TestCacheKeys:
    # Computed on the tree *before* this subsystem existed; the underscore
    # attribute filter and dataclass serialization added for the service
    # workload must not move any pre-existing key.
    GOLDEN_EP = "5d64e9c396161e33a4d4e252962789bb"
    GOLDEN_IS = "acbc3f3241b370e88d78e55463e3f9f9"

    @staticmethod
    def key_of(workload, size, policy, label="1"):
        spec = RunSpec(
            workload=workload,
            size=size,
            policy=policy,
            label=label,
            settings=RunnerSettings(),
        )
        return DiskResultCache.key_of(spec.key_payload())

    def test_pre_existing_keys_unchanged(self):
        assert self.key_of(EpWorkload(), 8, ground_truth_policy().build()) == (
            self.GOLDEN_EP
        )
        assert self.key_of(IsWorkload(), 4, paper_policies()[4].build()) == (
            self.GOLDEN_IS
        )

    def test_service_key_ignores_derived_state(self):
        workload = ServiceWorkload()
        policy = ground_truth_policy().build()
        before = self.key_of(workload, 8, policy)
        workload.build_apps(8)  # populates _plan/_arrivals/_query_manager
        assert self.key_of(workload, 8, policy) == before

    def test_service_key_depends_on_profile(self):
        policy = ground_truth_policy().build()
        base = self.key_of(ServiceWorkload(), 8, policy)
        other = self.key_of(
            ServiceWorkload(profile=ArrivalProfile(num_requests=999)), 8, policy
        )
        assert base != other

    def test_pickling_drops_derived_state(self):
        workload = ServiceWorkload()
        workload.build_apps(8)
        clone = pickle.loads(pickle.dumps(workload))
        assert clone._arrivals is None and clone._query_manager is None
        # The clone rebuilds everything and still runs.
        result = build_sim(clone, 8).run()
        assert result.completed


# --------------------------------------------------------------------- #
# Tracing and progress
# --------------------------------------------------------------------- #


class TestTracingAndProgress:
    def test_request_trace_events(self):
        workload = small_workload()
        sim = build_sim(workload, 4, trace=TraceConfig())
        workload.attach_trace(sim.collector)
        result = sim.run()
        assert result.completed
        events = sim.collector.of_kind("request")
        issued = [e for e in events if e.action == "issued"]
        completed = [e for e in events if e.action == "completed"]
        assert len(issued) == len(completed) == 150
        assert sim.collector.total("request") == 300
        assert all(e.latency > 0 for e in completed)
        assert {e.slo_miss for e in completed} <= {True, False}

    def test_requests_flag_disables_the_events(self):
        workload = small_workload()
        sim = build_sim(workload, 4, trace=TraceConfig(requests=False))
        workload.attach_trace(sim.collector)
        sim.run()
        assert sim.collector.total("request") == 0

    def test_tracing_never_changes_results(self):
        plain = build_sim(small_workload(), 4).run()
        workload = small_workload()
        sim = build_sim(workload, 4, trace=TraceConfig())
        workload.attach_trace(sim.collector)
        traced = sim.run()
        assert dataclasses.asdict(plain) == dataclasses.asdict(traced)

    def test_progress_summary_live_counters(self):
        workload = small_workload()
        assert workload.progress_summary() is None
        result = build_sim(workload, 4).run()
        assert result.completed
        progress = workload.progress_summary()
        assert "150/150 requests issued" in progress
        assert "0 in flight" in progress

    def test_incomplete_run_leaves_partial_progress(self):
        # A run cut off by the simulated-time limit must leave the live
        # counters visible — that is what the harness interpolates into
        # its "hit the simulated-time limit (app progress: ...)" error.
        workload = small_workload()
        result = build_sim(workload, 4, sim_time_limit=MILLISECOND).run()
        assert not result.completed
        progress = workload.progress_summary()
        assert "requests issued" in progress
        assert "in flight" in progress
        manager = workload._query_manager
        assert manager.completed < 150

    def test_run_timeout_carries_progress_detail(self):
        error = RunTimeout(
            "stall",
            label="SVC n=4",
            sim_time=1_000,
            detail="10/150 requests issued, 3 served, 0 delivered, 7 in flight",
        )
        assert "7 in flight" in str(error)
        revived = pickle.loads(pickle.dumps(error))
        assert revived.detail == error.detail
        assert "7 in flight" in str(revived)


# --------------------------------------------------------------------- #
# Constructor validation
# --------------------------------------------------------------------- #


class TestWorkloadValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ServiceWorkload(fanout=0)
        with pytest.raises(ValueError):
            ServiceWorkload(slo_ns=0)
        with pytest.raises(ValueError):
            ServiceWorkload(percentile=123.0)
        with pytest.raises(ValueError):
            ServiceWorkload(tier_weights=(1, 2), tier_models=(TierModel(),))

    def test_program_requires_build(self):
        workload = ServiceWorkload()
        with pytest.raises(RuntimeError):
            workload.program(None)
