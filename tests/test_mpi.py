"""Tests for the MPI layer: semantics, message counts, and tag hygiene.

Semantic tests run real SPMD programs on a ground-truth cluster (Q = 1 us,
zero stragglers) and assert the collectives compute correct values on every
rank and for power-of-two and non-power-of-two sizes alike.
"""

import math
import operator

import pytest

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.mpi import MpiRank, spmd_apps
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.node.requests import Send


def run_spmd(size, program, seed=11):
    """Run an SPMD program to completion on a ground-truth cluster."""
    apps = spmd_apps(size, program)
    nodes = [SimulatedNode(rank, app) for rank, app in enumerate(apps)]
    controller = NetworkController(size, PAPER_NETWORK(size))
    sim = ClusterSimulator(
        nodes, controller, FixedQuantumPolicy(MICROSECOND), ClusterConfig(seed=seed)
    )
    result = sim.run()
    assert result.completed
    assert result.controller_stats.stragglers == 0
    return result


def count_sends(size, program):
    """Total Send requests an SPMD program yields (structure check).

    Drives the generators directly, round-robin, with a fake in-order
    delivery network: no timing, just matching.
    """
    from collections import defaultdict, deque

    class FakeMessage:
        def __init__(self, src, tag, payload):
            self.src = src
            self.tag = tag
            self.payload = payload
            self.nbytes = 0
            self.delay_error = 0

    apps = spmd_apps(size, program)
    mailboxes = [defaultdict(deque) for _ in range(size)]
    started = [False] * size
    blocked = [None] * size  # Recv each rank is waiting on
    finished = [False] * size
    sends = 0

    def step(rank, value=None):
        if not started[rank]:
            started[rank] = True
            return next(apps[rank])
        return apps[rank].send(value)

    def find_match(rank, request):
        for (src, tag), queue in mailboxes[rank].items():
            if queue and request.matches(src, tag):
                return queue.popleft()
        return None

    progress = True
    while progress:
        progress = False
        for rank in range(size):
            if finished[rank]:
                continue
            value = None
            if blocked[rank] is not None:
                message = find_match(rank, blocked[rank])
                if message is None:
                    continue
                blocked[rank] = None
                value = message
            while True:
                try:
                    request = step(rank, value)
                except StopIteration:
                    finished[rank] = True
                    progress = True
                    break
                value = None
                if isinstance(request, Send):
                    sends += 1
                    mailboxes[request.dst][(rank, request.tag)].append(
                        FakeMessage(rank, request.tag, request.payload)
                    )
                    progress = True
                    continue
                message = find_match(rank, request)
                if message is not None:
                    value = message
                    progress = True
                    continue
                blocked[rank] = request
                break
    assert all(finished), "SPMD program deadlocked in structural executor"
    return sends


class TestMpiRank:
    def test_validation(self):
        with pytest.raises(ValueError):
            MpiRank(0, 1)
        with pytest.raises(ValueError):
            MpiRank(4, 4)

    def test_user_tag_space_enforced(self):
        mpi = MpiRank(0, 2)
        with pytest.raises(ValueError):
            list(mpi.send(1, 10, tag=1 << 20))
        with pytest.raises(ValueError):
            MpiRank.check_user_tag(-1)

    def test_self_send_rejected(self):
        mpi = MpiRank(0, 2)
        with pytest.raises(ValueError):
            list(mpi.send(0, 10))

    def test_collective_sequences_advance(self):
        mpi = MpiRank(0, 2)
        first = mpi._next_collective_tags()
        second = mpi._next_collective_tags()
        assert second > first

    def test_spmd_apps_one_per_rank(self):
        def program(mpi):
            yield from mpi.barrier()

        apps = spmd_apps(4, program)
        assert len(apps) == 4


class TestPointToPoint:
    @pytest.mark.parametrize("size", [2, 3])
    def test_ring_relay(self, size):
        received = {}

        def program(mpi):
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            yield from mpi.send(right, 128, tag=7, payload=f"from{mpi.rank}")
            message = yield from mpi.recv(src=left, tag=7)
            received[mpi.rank] = message.payload

        run_spmd(size, program)
        assert received == {r: f"from{(r - 1) % size}" for r in range(size)}

    def test_sendrecv_head_to_head(self):
        outcome = {}

        def program(mpi):
            peer = 1 - mpi.rank
            message = yield from mpi.sendrecv(peer, 64, tag=3, payload=mpi.rank)
            outcome[mpi.rank] = message.payload

        run_spmd(2, program)
        assert outcome == {0: 1, 1: 0}


class TestCollectiveSemantics:
    @pytest.mark.parametrize("size", [2, 4, 8, 3, 5])
    def test_allreduce_sum(self, size):
        results = {}

        def program(mpi):
            local = (mpi.rank + 1) ** 2
            total = yield from mpi.allreduce(8, local, operator.add)
            results[mpi.rank] = total

        run_spmd(size, program)
        expected = sum((r + 1) ** 2 for r in range(size))
        assert results == {r: expected for r in range(size)}

    @pytest.mark.parametrize("size", [2, 4, 3])
    def test_bcast_from_each_root(self, size):
        for root in range(size):
            results = {}

            def program(mpi, root=root):
                value = f"payload-{root}" if mpi.rank == root else None
                got = yield from mpi.bcast(root, 256, value)
                results[mpi.rank] = got

            run_spmd(size, program)
            assert results == {r: f"payload-{root}" for r in range(size)}

    @pytest.mark.parametrize("size", [2, 4, 5])
    def test_reduce_max_at_root(self, size):
        results = {}

        def program(mpi):
            got = yield from mpi.reduce(0, 8, mpi.rank * 10, max)
            results[mpi.rank] = got

        run_spmd(size, program)
        assert results[0] == (size - 1) * 10
        assert all(results[r] is None for r in range(1, size))

    @pytest.mark.parametrize("size", [2, 4, 8, 6])
    def test_alltoall_permutation(self, size):
        results = {}

        def program(mpi):
            outgoing = [(mpi.rank, dst) for dst in range(mpi.size)]
            incoming = yield from mpi.alltoall(512, outgoing)
            results[mpi.rank] = incoming

        run_spmd(size, program)
        for rank in range(size):
            assert results[rank] == [(src, rank) for src in range(size)]

    @pytest.mark.parametrize("size", [2, 4, 5])
    def test_allgather_collects_in_rank_order(self, size):
        results = {}

        def program(mpi):
            got = yield from mpi.allgather(64, value=mpi.rank * 3)
            results[mpi.rank] = got

        run_spmd(size, program)
        assert results == {r: [x * 3 for x in range(size)] for r in range(size)}

    @pytest.mark.parametrize("size", [2, 4, 5])
    def test_gather_and_scatter(self, size):
        gathered = {}
        scattered = {}

        def program(mpi):
            got = yield from mpi.gather(0, 64, value=mpi.rank + 100)
            gathered[mpi.rank] = got
            values = [f"slice{i}" for i in range(mpi.size)] if mpi.rank == 0 else None
            mine = yield from mpi.scatter(0, 64, values)
            scattered[mpi.rank] = mine

        run_spmd(size, program)
        assert gathered[0] == [r + 100 for r in range(size)]
        assert scattered == {r: f"slice{r}" for r in range(size)}

    def test_barrier_completes(self):
        def program(mpi):
            for _ in range(3):
                yield from mpi.barrier()

        run_spmd(4, program)

    def test_root_validation(self):
        mpi = MpiRank(0, 4)
        for op in (mpi.bcast(7, 10), mpi.reduce(-1, 10, 0, max), mpi.gather(9, 10)):
            with pytest.raises(ValueError):
                list(op)

    def test_alltoall_value_length_checked(self):
        mpi = MpiRank(0, 4)
        with pytest.raises(ValueError):
            list(mpi.alltoall(10, values=[1, 2]))

    def test_scatter_requires_values_at_root(self):
        mpi = MpiRank(0, 4)
        with pytest.raises(ValueError):
            list(mpi.scatter(0, 10, values=None))


class TestMessageCounts:
    """Wire-pattern checks: message counts match the documented algorithms."""

    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_barrier_messages(self, size):
        def program(mpi):
            yield from mpi.barrier()

        assert count_sends(size, program) == size * math.ceil(math.log2(size))

    @pytest.mark.parametrize("size", [2, 4, 8, 5])
    def test_bcast_messages(self, size):
        def program(mpi):
            yield from mpi.bcast(0, 10, "x")

        assert count_sends(size, program) == size - 1

    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_allreduce_messages_power_of_two(self, size):
        def program(mpi):
            yield from mpi.allreduce(10, 1, operator.add)

        assert count_sends(size, program) == size * int(math.log2(size))

    @pytest.mark.parametrize("size", [3, 5])
    def test_allreduce_messages_fallback(self, size):
        def program(mpi):
            yield from mpi.allreduce(10, 1, operator.add)

        assert count_sends(size, program) == 2 * (size - 1)

    @pytest.mark.parametrize("size", [2, 4, 8, 6])
    def test_alltoall_messages(self, size):
        def program(mpi):
            yield from mpi.alltoall(10)

        assert count_sends(size, program) == size * (size - 1)

    @pytest.mark.parametrize("size", [2, 5])
    def test_allgather_messages(self, size):
        def program(mpi):
            yield from mpi.allgather(10, 1)

        assert count_sends(size, program) == size * (size - 1)
