"""Crash-recovery smoke: SIGKILL a matrix mid-flight, resume, compare.

Not a pytest module (pytest collects ``test_*.py`` only) — CI runs this
directly. The scenario is the one the checkpoint subsystem exists for:

1. compute a reference report for a small experiment matrix;
2. start the same matrix in a child process with ``--checkpoint-dir``
   semantics, wait until its journal shows real progress, and SIGKILL it;
3. rerun with ``resume=True`` in a fresh process;
4. require the resumed report to be **byte-identical** to the reference.

Exit status 0 means the recovery path held; any assertion or crash is a
CI failure.

Usage: ``PYTHONPATH=src python tests/crash_recovery_smoke.py [workdir]``
(the victim-process entry point ``victim <dir>`` is internal).
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core import FixedQuantumPolicy
from repro.core.quantum import AdaptiveQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.harness.configs import PolicySpec
from repro.harness.experiment import ExperimentRunner
from repro.workloads import IsWorkload

US = MICROSECOND

SIZES = (2, 4, 8, 16, 32)


def workload():
    return IsWorkload(total_keys=2**17, iterations=3, ops_per_key=24)


def specs():
    return [
        PolicySpec("Q=10us", lambda: FixedQuantumPolicy(10 * US)),
        PolicySpec("Q=100us", lambda: FixedQuantumPolicy(100 * US)),
        PolicySpec("dyn", lambda: AdaptiveQuantumPolicy(5 * US, 1000 * US)),
    ]


def run_matrix(checkpoint_dir=None, resume=False):
    runner = ExperimentRunner(
        seed=42,
        checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
        resume=resume,
    )
    return runner.run_matrix(workload(), SIZES, specs())


def report_bytes(rows):
    payload = [dataclasses.asdict(row) for row in rows]
    return json.dumps(payload, sort_keys=True, indent=1).encode()


def victim(checkpoint_dir):
    """Child entry point: run the journaled matrix until killed.

    The victim journals wave by wave (one ``run_matrix`` call per
    cluster size, appending to one shared journal) the way a long
    campaign runs, so the parent's SIGKILL lands between waves and
    leaves a journal that is genuinely partial — finished sizes
    recorded, later sizes not."""
    runner = ExperimentRunner(seed=42, checkpoint_dir=str(checkpoint_dir))
    for size in SIZES:
        runner.run_matrix(workload(), (size,), specs())


def wait_for_progress(journal, deadline=120.0):
    """Block until the victim journals at least one finished cell (or the
    whole matrix finished fast — then the kill is a no-op and resume
    degenerates to pure journal replay, which must still be identical)."""
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            lines = journal.read_text().splitlines()
        except OSError:
            lines = []
        if any('"event":"done"' in line for line in lines):
            return
        time.sleep(0.01)
    raise SystemExit(f"victim made no journaled progress within {deadline}s")


def main(workdir):
    checkpoint_dir = Path(workdir) / "ckpt"
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    journal = checkpoint_dir / f"{workload().name}.matrix.jsonl"

    print("[1/4] computing the uninterrupted reference report...")
    reference = report_bytes(run_matrix())

    print("[2/4] starting the victim matrix, then SIGKILL mid-flight...")
    child = subprocess.Popen(
        [sys.executable, __file__, "victim", str(checkpoint_dir)],
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        wait_for_progress(journal)
    finally:
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait()
    done = sum(
        1 for line in journal.read_text().splitlines() if '"event":"done"' in line
    )
    print(f"      victim killed; journal holds {done} finished cell(s)")

    print("[3/4] resuming the matrix from the journal...")
    resumed = report_bytes(run_matrix(checkpoint_dir=checkpoint_dir, resume=True))

    print("[4/4] comparing reports...")
    assert resumed == reference, (
        "resumed matrix report differs from the uninterrupted reference "
        f"({len(resumed)} vs {len(reference)} bytes)"
    )
    print(f"OK: resumed report is byte-identical ({len(reference)} bytes)")


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "victim":
        victim(sys.argv[2])
    else:
        main(sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp())
