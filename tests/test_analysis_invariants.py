"""Tests for the runtime causality sanitizer (repro.analysis.invariants)."""

from __future__ import annotations

import dataclasses
from typing import Optional

import pytest

from repro.analysis.invariants import (
    CHECK_ENV,
    CausalitySanitizer,
    InvariantViolation,
    check_enabled,
)
from repro.core.cluster import ClusterConfig, ClusterSimulator, RunResult
from repro.core.quantum import FixedQuantumPolicy, QuantumStats
from repro.core.stats import HostCostBreakdown
from repro.engine.units import MICROSECOND, SimTime
from repro.network.controller import (
    ControllerStats,
    DeliveryDecision,
    DeliveryKind,
    NetworkController,
)
from repro.network.latency import PAPER_NETWORK
from repro.network.packet import Packet
from repro.node.node import SimulatedNode
from repro.workloads.synthetic import PingPongWorkload

# --------------------------------------------------------------------- #
# The enable switch
# --------------------------------------------------------------------- #


def test_check_enabled_explicit_wins(monkeypatch) -> None:
    monkeypatch.setenv(CHECK_ENV, "1")
    assert check_enabled(False) is False
    monkeypatch.delenv(CHECK_ENV)
    assert check_enabled(True) is True


@pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
def test_check_enabled_truthy_env(monkeypatch, value: str) -> None:
    monkeypatch.setenv(CHECK_ENV, value)
    assert check_enabled(None) is True


@pytest.mark.parametrize("value", ["", "0", "false", "off", "no", "2"])
def test_check_enabled_falsy_env(monkeypatch, value: str) -> None:
    monkeypatch.setenv(CHECK_ENV, value)
    assert check_enabled(None) is False


def test_check_enabled_default_off(monkeypatch) -> None:
    monkeypatch.delenv(CHECK_ENV, raising=False)
    assert check_enabled() is False


# --------------------------------------------------------------------- #
# Hook-level fixtures
# --------------------------------------------------------------------- #

MIN_Q = 1_000
MAX_Q = 100_000
MIN_LAT = 1_000


def make_sanitizer(
    min_q: SimTime = MIN_Q, max_q: SimTime = MAX_Q, min_lat: SimTime = MIN_LAT
) -> CausalitySanitizer:
    return CausalitySanitizer(min_quantum=min_q, max_quantum=max_q, min_latency=min_lat)


def decision(
    kind: DeliveryKind,
    send: SimTime = 0,
    due: SimTime = 5_000,
    deliver: Optional[SimTime] = None,
    straggler: bool = False,
) -> DeliveryDecision:
    packet = Packet(src=0, dst=1, size_bytes=100, send_time=send)
    packet.due_time = due
    packet.deliver_time = due if deliver is None else deliver
    packet.straggler = straggler
    return DeliveryDecision(packet, kind, packet.deliver_time)


def violation(excinfo) -> str:
    return excinfo.value.invariant


def test_constructor_validates_bounds() -> None:
    with pytest.raises(ValueError):
        CausalitySanitizer(min_quantum=0, max_quantum=10, min_latency=1)
    with pytest.raises(ValueError):
        CausalitySanitizer(min_quantum=10, max_quantum=5, min_latency=1)
    with pytest.raises(ValueError):
        CausalitySanitizer(min_quantum=1, max_quantum=10, min_latency=0)


def test_ground_truth_flag_follows_conservative_bound() -> None:
    assert make_sanitizer(max_q=MIN_LAT).ground_truth is True
    assert make_sanitizer(max_q=MIN_LAT + 1).ground_truth is False


# -- quantum window checks --------------------------------------------- #


def test_quantum_start_accepts_contiguous_windows() -> None:
    sanitizer = make_sanitizer()
    sanitizer.on_quantum_start(0, 10_000)
    sanitizer.on_quantum_end(0, 10_000, 0)
    sanitizer.on_quantum_start(10_000, 20_000)
    assert sanitizer.quantum_index == 1


def test_quantum_start_rejects_clock_regression() -> None:
    sanitizer = make_sanitizer()
    sanitizer.on_quantum_start(0, 10_000)
    sanitizer.on_quantum_end(0, 10_000, 0)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_quantum_start(5_000, 15_000)
    assert violation(excinfo) == "clock-regression"
    assert excinfo.value.quantum_index == 1


def test_quantum_start_rejects_time_gap() -> None:
    sanitizer = make_sanitizer()
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_quantum_start(5_000, 15_000)
    assert violation(excinfo) == "time-gap"


@pytest.mark.parametrize("length", [MIN_Q - 1, MAX_Q + 1])
def test_quantum_start_rejects_out_of_clamp_window(length: SimTime) -> None:
    sanitizer = make_sanitizer()
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_quantum_start(0, length)
    assert violation(excinfo) == "quantum-clamp"


def test_quantum_end_rejects_negative_np() -> None:
    sanitizer = make_sanitizer()
    sanitizer.on_quantum_start(0, 10_000)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_quantum_end(0, 10_000, -1)
    assert violation(excinfo) == "packet-accounting"


# -- delivery checks ---------------------------------------------------- #


def open_window(sanitizer: CausalitySanitizer) -> None:
    sanitizer.on_quantum_start(0, 10_000)


def test_decision_exact_now_valid() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    sanitizer.on_decision(decision(DeliveryKind.EXACT_NOW, due=5_000))
    assert sanitizer._counts[DeliveryKind.EXACT_NOW] == 1


def test_decision_straggler_now_valid() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    sanitizer.on_decision(
        decision(DeliveryKind.STRAGGLER_NOW, due=2_000, deliver=3_000, straggler=True)
    )


def test_decision_rejects_latency_underrun() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_decision(decision(DeliveryKind.EXACT_NOW, send=0, due=500))
    assert violation(excinfo) == "latency-underrun"
    assert excinfo.value.node == 1


def test_decision_rejects_early_delivery() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_decision(
            decision(DeliveryKind.EXACT_NOW, due=5_000, deliver=4_000)
        )
    assert violation(excinfo) == "early-delivery"


def test_decision_rejects_unaccounted_late_delivery() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_decision(
            decision(DeliveryKind.EXACT_NOW, due=2_000, deliver=3_000)
        )
    assert violation(excinfo) == "late-delivery"


def test_decision_rejects_exact_flagged_as_straggler() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_decision(
            decision(DeliveryKind.EXACT_NOW, due=5_000, straggler=True)
        )
    assert violation(excinfo) == "straggler-accounting"


def test_decision_rejects_unflagged_straggler() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_decision(
            decision(DeliveryKind.STRAGGLER_NOW, due=2_000, deliver=3_000)
        )
    assert violation(excinfo) == "straggler-accounting"


def test_decision_rejects_exact_now_past_barrier() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_decision(decision(DeliveryKind.EXACT_NOW, due=20_000))
    assert violation(excinfo) == "window-escape"


def test_decision_rejects_straggler_outside_window() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_decision(
            decision(
                DeliveryKind.STRAGGLER_NOW, due=2_000, deliver=10_000, straggler=True
            )
        )
    assert violation(excinfo) == "window-escape"


def test_decision_rejects_next_quantum_not_at_boundary() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_decision(
            decision(
                DeliveryKind.STRAGGLER_NEXT_QUANTUM,
                due=2_000,
                deliver=9_000,
                straggler=True,
            )
        )
    assert violation(excinfo) == "window-escape"


# -- fast-forward checks ------------------------------------------------ #


def test_fast_forward_valid_span_advances_counters() -> None:
    sanitizer = make_sanitizer()
    sanitizer.on_fast_forward(0, 50_000, 5, horizon=60_000, next_held=55_000)
    assert sanitizer.quantum_index == 5
    sanitizer.on_quantum_start(50_000, 60_000)  # contiguous continuation


def test_fast_forward_rejects_discontinuous_start() -> None:
    sanitizer = make_sanitizer()
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_fast_forward(10_000, 50_000, 5, horizon=100_000, next_held=None)
    assert violation(excinfo) == "clock-regression"


def test_fast_forward_rejects_overrunning_horizon() -> None:
    sanitizer = make_sanitizer()
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_fast_forward(0, 50_000, 5, horizon=40_000, next_held=None)
    assert violation(excinfo) == "fast-forward-overrun"


def test_fast_forward_rejects_skipping_a_held_frame() -> None:
    sanitizer = make_sanitizer()
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_fast_forward(0, 50_000, 5, horizon=60_000, next_held=30_000)
    assert violation(excinfo) == "fast-forward-overrun"


# -- run-end accounting checks ------------------------------------------ #


def fake_result(
    stats: ControllerStats, quantum_stats: Optional[QuantumStats] = None
) -> RunResult:
    return RunResult(
        sim_time=0,
        host_time=0.0,
        completed=True,
        breakdown=HostCostBreakdown(),
        quantum_stats=quantum_stats or QuantumStats(),
        controller_stats=stats,
        node_stats=[],
        app_results=[],
        app_finish_times=[],
        timeline=None,
    )


def test_run_end_accepts_consistent_stats() -> None:
    sanitizer = make_sanitizer()
    open_window(sanitizer)
    sanitizer.on_decision(decision(DeliveryKind.EXACT_NOW, due=5_000))
    sanitizer.on_quantum_end(0, 10_000, 1)
    quantum_stats = QuantumStats()
    quantum_stats.record(10_000)
    stats = ControllerStats(
        packets_routed=1, exact_now=1, quanta_seen=1, busy_quanta=1
    )
    sanitizer.on_run_end(fake_result(stats, quantum_stats))


def test_run_end_rejects_per_kind_sum_mismatch() -> None:
    sanitizer = make_sanitizer()
    stats = ControllerStats(packets_routed=3, exact_now=1)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_run_end(fake_result(stats))
    assert violation(excinfo) == "packet-accounting"


def test_run_end_rejects_counter_drift_from_observed_decisions() -> None:
    # Internally-consistent controller stats that do not match what the
    # sanitizer actually witnessed: a dropped/duplicated accounting call.
    sanitizer = make_sanitizer()
    stats = ControllerStats(packets_routed=1, exact_now=1)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_run_end(fake_result(stats))
    assert violation(excinfo) == "packet-accounting"


def test_run_end_rejects_quanta_mismatch() -> None:
    sanitizer = make_sanitizer()
    stats = ControllerStats(quanta_seen=2)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_run_end(fake_result(stats))  # QuantumStats says 0
    assert violation(excinfo) == "quantum-accounting"


def test_run_end_rejects_busy_exceeding_total() -> None:
    sanitizer = make_sanitizer()
    quantum_stats = QuantumStats()
    quantum_stats.record(10_000)
    stats = ControllerStats(quanta_seen=1, busy_quanta=2)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_run_end(fake_result(stats, quantum_stats))
    assert violation(excinfo) == "quantum-accounting"


def test_run_end_rejects_delay_error_without_stragglers() -> None:
    sanitizer = make_sanitizer()
    stats = ControllerStats(total_delay_error=7, max_delay_error=7)
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_run_end(fake_result(stats))
    assert violation(excinfo) == "straggler-accounting"


def test_run_end_rejects_ground_truth_with_stragglers() -> None:
    sanitizer = make_sanitizer(max_q=MIN_LAT)  # Q <= T: ground truth
    assert sanitizer.ground_truth
    sanitizer._counts[DeliveryKind.STRAGGLER_NOW] = 1
    stats = ControllerStats(
        packets_routed=1,
        stragglers_now=1,
        total_delay_error=5,
        max_delay_error=5,
    )
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.on_run_end(fake_result(stats))
    assert violation(excinfo) == "ground-truth-straggler"


def test_violation_message_carries_context() -> None:
    err = InvariantViolation(
        "early-delivery", "bad", node=3, sim_time=2_000, quantum_index=7
    )
    text = str(err)
    assert "[early-delivery]" in text
    assert "quantum #7" in text
    assert "node 3" in text
    assert err.node == 3
    assert err.sim_time == 2_000
    assert err.quantum_index == 7


# --------------------------------------------------------------------- #
# End-to-end: real cluster runs
# --------------------------------------------------------------------- #


def build_cluster(
    policy_factory,
    check: Optional[bool],
    controller_cls=NetworkController,
    size: int = 4,
) -> ClusterSimulator:
    workload = PingPongWorkload(rounds=10)
    nodes = [
        SimulatedNode(i, app) for i, app in enumerate(workload.build_apps(size))
    ]
    controller = controller_cls(size, PAPER_NETWORK(size))
    config = ClusterConfig(seed=7, check=check)
    return ClusterSimulator(nodes, controller, policy_factory(), config)


def test_sanitizer_off_by_default(monkeypatch) -> None:
    monkeypatch.delenv(CHECK_ENV, raising=False)
    simulator = build_cluster(lambda: FixedQuantumPolicy(MICROSECOND), check=None)
    assert simulator.sanitizer is None
    assert simulator.controller.sanitizer is None


def test_sanitizer_enabled_via_environment(monkeypatch) -> None:
    monkeypatch.setenv(CHECK_ENV, "1")
    simulator = build_cluster(lambda: FixedQuantumPolicy(MICROSECOND), check=None)
    assert simulator.sanitizer is not None
    assert simulator.controller.sanitizer is simulator.sanitizer


@pytest.mark.parametrize(
    "quantum", [MICROSECOND, 100 * MICROSECOND], ids=["ground-truth", "straggling"]
)
def test_checked_run_is_bit_identical_and_clean(quantum: SimTime) -> None:
    policy = lambda: FixedQuantumPolicy(quantum)  # noqa: E731
    plain = build_cluster(policy, check=False).run()
    checked_sim = build_cluster(policy, check=True)
    checked = checked_sim.run()
    assert checked_sim.sanitizer is not None
    assert checked_sim.sanitizer.violations_checked > 0
    assert dataclasses.asdict(plain) == dataclasses.asdict(checked)


def test_tampered_controller_is_caught() -> None:
    class EarlyController(NetworkController):
        """Delivers every frame one nanosecond early: a causality bug."""

        def _decide(self, packet, dst, sender_host_time):
            verdict = super()._decide(packet, dst, sender_host_time)
            verdict.packet.deliver_time -= 1
            return DeliveryDecision(verdict.packet, verdict.kind, verdict.deliver_time - 1)

    simulator = build_cluster(
        lambda: FixedQuantumPolicy(100 * MICROSECOND),
        check=True,
        controller_cls=EarlyController,
    )
    with pytest.raises(InvariantViolation) as excinfo:
        simulator.run()
    assert excinfo.value.invariant == "early-delivery"


def test_desynced_packet_record_is_caught() -> None:
    class DriftingController(NetworkController):
        """Corrupts the packet's deliver_time record without changing what
        the engine enacts — delay-error stats would silently diverge."""

        def _decide(self, packet, dst, sender_host_time):
            verdict = super()._decide(packet, dst, sender_host_time)
            verdict.packet.deliver_time -= 1
            return verdict

    simulator = build_cluster(
        lambda: FixedQuantumPolicy(100 * MICROSECOND),
        check=True,
        controller_cls=DriftingController,
    )
    with pytest.raises(InvariantViolation) as excinfo:
        simulator.run()
    assert excinfo.value.invariant == "record-drift"


def test_rogue_policy_quantum_clamp_is_caught() -> None:
    class RoguePolicy(FixedQuantumPolicy):
        """Executes windows twice as long as its declared maximum."""

        def window(self, quantum: float) -> SimTime:
            return self.max_quantum * 2

    simulator = build_cluster(lambda: RoguePolicy(MICROSECOND), check=True)
    with pytest.raises(InvariantViolation) as excinfo:
        simulator.run()
    assert excinfo.value.invariant == "quantum-clamp"


def test_unchecked_run_tolerates_tampered_controller() -> None:
    # Sanity check of the off switch: the same defect goes unnoticed when
    # checking is disabled (which is exactly why the sanitizer exists).
    class LateFlagController(NetworkController):
        def _account(self, decision):
            decision.packet.straggler = False  # corrupt the flag silently
            super()._account(decision)

    simulator = build_cluster(
        lambda: FixedQuantumPolicy(100 * MICROSECOND),
        check=False,
        controller_cls=LateFlagController,
    )
    simulator.run()  # completes without raising
