"""Differential equivalence across drivers *and* engine backends.

``ClusterConfig.vectorized`` switches the driver onto the numpy window
stepper, the subset fast-forward, and the ground-truth drain path;
``ClusterConfig.backend`` swaps the engine hot core for the compiled C
implementation.  All of them are *accelerations*, not approximations:
every test here runs the same configuration through the full
backend x driver grid (python/native x scalar/vectorized — native rows
only when the compiled module is importable) and asserts the results are
equal field-for-field — including the structured trace stream when
tracing is on.

Coverage:

* a deterministic sweep of 45+ configurations (three paper workloads x
  three cluster sizes x five quantum policies, plus traced, faulted,
  sanitized, and recovery-transport variants), each swept over the grid,
* a Hypothesis property over random SPMD programs, policies, and seeds,
  with tracing enabled so the event streams are compared too,
* a regression guard that the subset fast-forward never fires when every
  node holds a pending application event in every window.
"""

from __future__ import annotations

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    AdaptiveQuantumPolicy,
    ClusterConfig,
    ClusterSimulator,
    FixedQuantumPolicy,
)
from repro.engine.backend import native_available
from repro.engine.units import MICROSECOND
from repro.faults.plan import load_plan
from repro.mpi.api import spmd_apps
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import SimulatedNode
from repro.node.requests import Compute
from repro.node.transport import RecoveryConfig, TransportConfig
from repro.obs.collector import TraceConfig
from repro.workloads import EpWorkload, IsWorkload, NamdWorkload

from tests.test_cluster_properties import make_program, program_schedules

US = MICROSECOND

# Without a compiler (or before `python -m repro.engine.backend --build`)
# the grid degrades to the python column: the pure-python path is the
# reference and must pass on its own.
BACKENDS = ("python", "native") if native_available() else ("python",)

SIZES = (2, 4, 8)

POLICIES = {
    "1us": lambda: FixedQuantumPolicy(US),
    "10us": lambda: FixedQuantumPolicy(10 * US),
    "100us": lambda: FixedQuantumPolicy(100 * US),
    "dyn 1.03": lambda: AdaptiveQuantumPolicy(US, 1000 * US, inc=1.03, dec=0.02),
    "dyn 1.05": lambda: AdaptiveQuantumPolicy(US, 1000 * US, inc=1.05, dec=0.02),
}

WORKLOADS = {
    "EP": lambda size: EpWorkload().build_apps(size),
    "IS": lambda size: IsWorkload().build_apps(size),
    "NAMD": lambda size: NamdWorkload().build_apps(size),
}


def _normalize_packet_ids(events):
    """Rebase absolute packet ids to per-run dense indices.

    ``Packet.packet_id`` comes from a process-global counter, so two runs
    in one process see different absolute ids even when they create the
    exact same packets in the exact same order.  Remapping ids by first
    appearance makes the comparison exact while still verifying that the
    two streams reference packets in the same relative pattern.
    """
    mapping: dict[int, int] = {}
    normalized = []
    for event in events:
        packet_id = getattr(event, "packet_id", None)
        if packet_id is None:
            normalized.append(event)
            continue
        dense = mapping.setdefault(packet_id, len(mapping))
        normalized.append(dataclasses.replace(event, packet_id=dense))
    return normalized


def _run(
    apps_factory,
    size,
    policy_factory,
    *,
    vectorized,
    seed=7,
    faults=None,
    trace=False,
    transport=None,
    check=None,
    backend="python",
):
    nodes = [
        SimulatedNode(i, app, transport=transport)
        for i, app in enumerate(apps_factory(size))
    ]
    controller = NetworkController(size, PAPER_NETWORK(size))
    config = ClusterConfig(
        seed=seed,
        vectorized=vectorized,
        faults=faults,
        trace=TraceConfig() if trace else None,
        check=check,
        backend=backend,
    )
    sim = ClusterSimulator(nodes, controller, policy_factory(), config)
    result = sim.run()
    events = (
        _normalize_packet_ids(sim.collector.events)
        if sim.collector is not None
        else None
    )
    counts = dict(sim.collector.counts) if sim.collector is not None else None
    return result, sim, events, counts


def _assert_equivalent(apps_factory, size, policy_factory, **kwargs):
    """Sweep the backend x driver grid; every cell must equal the first.

    The scalar pure-python run is the reference implementation; the
    vectorized driver and the compiled backend (in every combination)
    must reproduce it field-for-field, trace stream included.
    """
    reference = None
    for backend in BACKENDS:
        for vectorized in (False, True):
            result, _, events, counts = _run(
                apps_factory, size, policy_factory,
                vectorized=vectorized, backend=backend, **kwargs
            )
            assert result.completed
            if reference is None:
                reference = (result, events, counts)
                continue
            assert result == reference[0], (backend, vectorized)
            assert events == reference[1], (backend, vectorized)
            assert counts == reference[2], (backend, vectorized)


# ---------------------------------------------------------------------- #
# Deterministic configuration sweep (the >= 40 config equivalence matrix)
# ---------------------------------------------------------------------- #


def test_paper_matrix_is_bit_identical():
    """3 workloads x 3 sizes x 5 policies = 45 configurations."""
    configs = 0
    for apps_factory in WORKLOADS.values():
        for size in SIZES:
            for policy_factory in POLICIES.values():
                _assert_equivalent(apps_factory, size, policy_factory)
                configs += 1
    assert configs == 45


def test_traced_runs_are_bit_identical():
    """Tracing forces the interleaved stepper; streams must match exactly."""
    for name in ("1us", "dyn 1.03"):
        for apps_factory in WORKLOADS.values():
            _assert_equivalent(apps_factory, 4, POLICIES[name], trace=True)


def test_checked_runs_are_bit_identical():
    """The causality sanitizer audits both paths without changing results."""
    for name in ("1us", "dyn 1.03"):
        _assert_equivalent(WORKLOADS["IS"], 4, POLICIES[name], check=True)


def test_faulted_runs_are_bit_identical():
    """Fault injection (loss + jitter) disables the drain path; the
    vectorized driver must still reproduce the scalar run exactly."""
    transport = TransportConfig(recovery=RecoveryConfig())
    for preset in ("lossy-1", "jittery"):
        faults = load_plan(preset)
        for name in ("1us", "dyn 1.03"):
            _assert_equivalent(
                WORKLOADS["IS"], 4, POLICIES[name], faults=faults,
                transport=transport,
            )


def test_recovery_transport_runs_are_bit_identical():
    """Delayed-ack and RTO timer events flow through the fused window
    drain; recovery-transport runs must stay equivalent (and this covers
    the drain path's timer dispatch)."""
    transport = TransportConfig(recovery=RecoveryConfig())
    for name in ("1us", "dyn 1.03"):
        _assert_equivalent(
            WORKLOADS["IS"], 4, POLICIES[name], transport=transport
        )


# ---------------------------------------------------------------------- #
# Property: random programs, policies, seeds — results and traces match
# ---------------------------------------------------------------------- #

_policy_factories = st.one_of(
    st.sampled_from([US, 10 * US, 100 * US, 1000 * US]).map(
        lambda q: (lambda: FixedQuantumPolicy(q))
    ),
    st.tuples(
        st.floats(min_value=1.01, max_value=1.4),
        st.floats(min_value=0.02, max_value=0.9),
    ).map(lambda p: (lambda: AdaptiveQuantumPolicy(US, 1000 * US, inc=p[0], dec=p[1]))),
)


@settings(deadline=None, max_examples=15,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    schedule=program_schedules,
    size=st.integers(min_value=2, max_value=5),
    policy_factory=_policy_factories,
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_vectorized_is_bit_identical(schedule, size, policy_factory, seed):
    def apps_factory(n):
        return spmd_apps(n, make_program(schedule))

    _assert_equivalent(
        apps_factory, size, policy_factory, seed=seed, trace=True
    )


# ---------------------------------------------------------------------- #
# Subset fast-forward engagement guards
# ---------------------------------------------------------------------- #


def test_subset_fast_forward_never_fires_when_every_node_is_busy():
    """When every node holds a pending application event in every window,
    nothing can be skipped: the subset fast-forward must stay silent."""

    def app():
        # ~300 ns per compute chunk at the default 2.6 GHz: strictly more
        # than one event per node per 1 us ground-truth window.
        for _ in range(400):
            yield Compute(ops=780.0)

    size = 4
    nodes = [SimulatedNode(i, app()) for i in range(size)]
    controller = NetworkController(size, PAPER_NETWORK(size))
    config = ClusterConfig(seed=3, vectorized=True)
    sim = ClusterSimulator(nodes, controller, FixedQuantumPolicy(US), config)
    result = sim.run()
    assert result.completed
    assert sim.perf.stepped_node_quanta > 0
    assert sim.perf.subset_windows == 0
    assert sim.perf.skipped_node_quanta == 0


def test_subset_fast_forward_fires_on_imbalanced_nodes():
    """Sanity check of the counter itself: with one busy rank and idle
    peers (blocked in Recv), windows must skip the idle subset."""

    def program(mpi):
        if mpi.rank == 0:
            yield Compute(ops=2_600_000.0)  # ~1 ms alone
            for peer in range(1, mpi.size):
                yield from mpi.send(peer, 64, tag=9)
        else:
            yield from mpi.recv(src=0, tag=9)
        return "done"

    size = 4
    nodes = [
        SimulatedNode(i, app) for i, app in enumerate(spmd_apps(size, program))
    ]
    controller = NetworkController(size, PAPER_NETWORK(size))
    config = ClusterConfig(seed=3, vectorized=True)
    sim = ClusterSimulator(nodes, controller, FixedQuantumPolicy(US), config)
    result = sim.run()
    assert result.completed
    assert sim.perf.subset_windows > 0
    assert sim.perf.skipped_node_quanta > 0
