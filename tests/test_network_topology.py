"""Topology latency structure: closed forms, the cached minimum scan."""

from __future__ import annotations

import pytest

from repro.network.topology import (
    FullyConnectedTopology,
    StarTopology,
    TwoLevelTreeTopology,
)


class TestMinExtraLatencyAgainstBruteForce:
    """Every topology's minimum must equal the exhaustive pair scan."""

    @pytest.mark.parametrize("num_nodes", [2, 3, 8])
    @pytest.mark.parametrize("switch_latency", [0, 500])
    def test_star(self, num_nodes, switch_latency):
        topo = StarTopology(num_nodes, switch_latency=switch_latency)
        assert topo.min_extra_latency() == topo.scan_min_extra_latency()

    @pytest.mark.parametrize("num_nodes", [2, 5])
    @pytest.mark.parametrize("link_latency", [0, 120])
    def test_fully_connected(self, num_nodes, link_latency):
        topo = FullyConnectedTopology(num_nodes, link_latency=link_latency)
        assert topo.min_extra_latency() == topo.scan_min_extra_latency()

    @pytest.mark.parametrize(
        "num_nodes,rack_size",
        [
            (8, 4),   # several multi-node racks
            (8, 8),   # single rack: no inter-rack paths exist
            (6, 8),   # rack larger than the cluster
            (4, 1),   # one-node racks: no intra-rack paths exist
            (7, 3),   # ragged final rack
            (2, 1),
        ],
    )
    @pytest.mark.parametrize("edge,core", [(100, 50), (100, 2_000), (0, 0)])
    def test_two_level_tree(self, num_nodes, rack_size, edge, core):
        topo = TwoLevelTreeTopology(
            num_nodes, rack_size=rack_size, edge_latency=edge, core_latency=core
        )
        assert topo.min_extra_latency() == topo.scan_min_extra_latency()


class _CountingTree(TwoLevelTreeTopology):
    """Instrumented topology counting per-pair latency queries."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.calls = 0

    def extra_latency(self, src: int, dst: int):
        self.calls = self.calls + 1
        return super().extra_latency(src, dst)


class TestMinExtraLatencyCache:
    def test_scan_runs_once(self):
        topo = _CountingTree(8, rack_size=4, edge_latency=100, core_latency=50)
        first = topo.min_extra_latency()
        scanned = topo.calls
        assert scanned == 8 * 7  # the full O(n^2) pair scan
        second = topo.min_extra_latency()
        assert second == first
        assert topo.calls == scanned  # cached: no further pair queries

    def test_scan_helper_is_uncached(self):
        topo = _CountingTree(4, rack_size=2, edge_latency=10, core_latency=5)
        topo.scan_min_extra_latency()
        topo.scan_min_extra_latency()
        assert topo.calls == 2 * 4 * 3

    def test_closed_form_overrides_skip_the_scan(self):
        class _CountingStar(StarTopology):
            calls = 0

            def extra_latency(self, src: int, dst: int):
                type(self).calls += 1
                return super().extra_latency(src, dst)

        topo = _CountingStar(16, switch_latency=7)
        assert topo.min_extra_latency() == 7
        assert _CountingStar.calls == 0
