"""Tests for the deterministic open-loop arrival feeder."""

import json

import numpy as np
import pytest

from repro.engine.rng import RngStreams
from repro.engine.units import MILLISECOND, SECOND
from repro.service import (
    ARRIVALS_STREAM,
    ArrivalProfile,
    BurstWindow,
    draw_arrivals,
)


def stream(seed=42):
    return RngStreams(seed).stream(ARRIVALS_STREAM)


class TestValidation:
    def test_profile_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ArrivalProfile(rate_per_sec=0)
        with pytest.raises(ValueError):
            ArrivalProfile(num_requests=-1)
        with pytest.raises(ValueError):
            ArrivalProfile(diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            ArrivalProfile(diurnal_period=0)

    def test_burst_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            BurstWindow(start=-1, end=10, factor=2.0)
        with pytest.raises(ValueError):
            BurstWindow(start=10, end=10, factor=2.0)
        with pytest.raises(ValueError):
            BurstWindow(start=0, end=10, factor=0.0)


class TestProfileIdentity:
    def test_hashable_and_compares_by_value(self):
        a = ArrivalProfile(bursts=(BurstWindow(0, MILLISECOND, 2.0),))
        b = ArrivalProfile(bursts=[BurstWindow(0, MILLISECOND, 2.0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a in {b}

    def test_json_round_trip(self):
        profile = ArrivalProfile(
            rate_per_sec=5_000.0,
            num_requests=123,
            diurnal_amplitude=0.4,
            diurnal_period=2 * SECOND,
            bursts=(BurstWindow(MILLISECOND, 3 * MILLISECOND, 2.5),),
        )
        restored = ArrivalProfile.from_dict(json.loads(json.dumps(profile.to_dict())))
        assert restored == profile

    def test_describe_mentions_modulation(self):
        plain = ArrivalProfile()
        assert "diurnal" not in plain.describe()
        modulated = ArrivalProfile(
            diurnal_amplitude=0.5, bursts=(BurstWindow(0, MILLISECOND, 2.0),)
        )
        assert "diurnal" in modulated.describe()
        assert "burst" in modulated.describe()


class TestDeterminism:
    def test_same_profile_same_seed_identical(self):
        profile = ArrivalProfile(num_requests=500)
        first = draw_arrivals(profile, stream())
        second = draw_arrivals(profile, stream())
        assert np.array_equal(first, second)

    def test_modulated_profile_identical(self):
        profile = ArrivalProfile(
            num_requests=500,
            diurnal_amplitude=0.5,
            diurnal_period=10 * MILLISECOND,
            bursts=(BurstWindow(MILLISECOND, 5 * MILLISECOND, 3.0),),
        )
        assert np.array_equal(
            draw_arrivals(profile, stream()), draw_arrivals(profile, stream())
        )

    def test_seed_changes_arrivals(self):
        profile = ArrivalProfile(num_requests=500)
        assert not np.array_equal(
            draw_arrivals(profile, stream(1)), draw_arrivals(profile, stream(2))
        )

    def test_null_profile_consumes_zero_draws(self):
        # FaultPlan-style guarantee: a disabled feeder leaves the stream
        # byte-identical to one that was never touched.
        rng = stream()
        arrivals = draw_arrivals(ArrivalProfile(num_requests=0), rng)
        assert len(arrivals) == 0
        untouched = stream()
        assert np.array_equal(rng.random(16), untouched.random(16))

    def test_homogeneous_draw_count_is_exact(self):
        # The unmodulated path consumes exactly num_requests exponential
        # draws — part of the determinism contract (stream consumption is
        # a function of the profile alone).
        count = 257
        rng = stream()
        draw_arrivals(ArrivalProfile(num_requests=count), rng)
        reference = stream()
        reference.exponential(size=count)
        assert np.array_equal(rng.random(16), reference.random(16))


class TestArrivalShape:
    def test_strictly_increasing_int64(self):
        arrivals = draw_arrivals(ArrivalProfile(num_requests=1_000), stream())
        assert arrivals.dtype == np.int64
        assert len(arrivals) == 1_000
        assert np.all(np.diff(arrivals) >= 1)

    def test_mean_gap_tracks_rate(self):
        profile = ArrivalProfile(rate_per_sec=100_000.0, num_requests=5_000)
        arrivals = draw_arrivals(profile, stream())
        mean_gap = float(np.diff(arrivals).mean())
        assert mean_gap == pytest.approx(profile.mean_gap_ns, rel=0.1)

    def test_modulated_length_and_order(self):
        profile = ArrivalProfile(
            num_requests=800,
            diurnal_amplitude=0.5,
            diurnal_period=20 * MILLISECOND,
        )
        arrivals = draw_arrivals(profile, stream())
        assert len(arrivals) == 800
        assert np.all(np.diff(arrivals) >= 0)

    def test_burst_concentrates_arrivals(self):
        window = BurstWindow(40 * MILLISECOND, 50 * MILLISECOND, 4.0)
        profile = ArrivalProfile(
            rate_per_sec=20_000.0, num_requests=2_000, bursts=(window,)
        )
        arrivals = draw_arrivals(profile, stream())
        horizon = int(arrivals[-1])
        assert horizon > window.end
        inside = int(
            np.count_nonzero((arrivals >= window.start) & (arrivals < window.end))
        )
        outside = len(arrivals) - inside
        density_in = inside / (window.end - window.start)
        density_out = outside / (horizon - (window.end - window.start))
        # 4x rate inside the window: the density ratio must clearly
        # reflect the burst (loose bound; the draw is random but fixed).
        assert density_in / density_out > 2.0

    def test_unsatisfiable_modulation_raises(self, monkeypatch):
        # A burst that suppresses essentially all acceptance mass makes
        # thinning spin; the guard reports instead of looping forever.
        # The round bound is patched down so the test stays fast.
        from repro.service import arrivals as arrivals_module

        monkeypatch.setattr(arrivals_module, "_MAX_ROUNDS", 3)
        profile = ArrivalProfile(
            rate_per_sec=10_000.0,
            num_requests=100,
            # A near-zero rate factor over an enormous window rejects
            # virtually every candidate the bounded rounds can produce.
            bursts=(BurstWindow(0, 10**18, 1e-12),),
        )
        with pytest.raises(ValueError, match="thinning"):
            draw_arrivals(profile, stream())
