"""Kill/resume bit-identity: the checkpoint subsystem's acceptance gate.

Every test follows the same shape: run a configuration to completion
while collecting a snapshot at every quantum boundary, then rebuild a
fresh simulator, restore an intermediate snapshot, run it to completion,
and require the resumed result to be *bit-identical* (``asdict``
equality, byte-identical trace streams) to the uninterrupted reference.
The matrix spans the drivers ({scalar, vectorized, sharded}) crossed
with the observation modes ({plain, checked, traced, faulted}).
"""

import dataclasses

import pytest

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    capture_snapshot,
    restore_snapshot,
)
from repro.core import (
    ClusterConfig,
    ClusterSimulator,
    FixedQuantumPolicy,
)
from repro.engine.units import MICROSECOND
from repro.faults.plan import FaultPlan
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import ComputeTime, Recv, Send, SimulatedNode
from repro.node.transport import RecoveryConfig, TransportConfig
from repro.obs.collector import TraceConfig
from repro.shard import run_sharded
from repro.workloads import IsWorkload

US = MICROSECOND


def pingpong_apps(rounds, gap=50 * US, nbytes=64):
    def pinger():
        for _ in range(rounds):
            yield Send(dst=1, nbytes=nbytes)
            yield Recv(src=1)
            yield ComputeTime(gap)
        return "ping-done"

    def ponger():
        for _ in range(rounds):
            yield Recv(src=0)
            yield Send(dst=0, nbytes=nbytes)
        return "pong-done"

    return [pinger(), ponger()]


def build_sim(
    tmp_path,
    *,
    apps=None,
    num_nodes=2,
    seed=7,
    vectorized=False,
    window=10 * US,
    transport=None,
    **config_kwargs,
):
    apps = apps if apps is not None else pingpong_apps(20)
    nodes = [
        SimulatedNode(i, app, transport=transport) for i, app in enumerate(apps)
    ]
    controller = NetworkController(num_nodes, PAPER_NETWORK(num_nodes))
    config = ClusterConfig(
        seed=seed,
        vectorized=vectorized,
        checkpoint=CheckpointConfig(directory=str(tmp_path), every_quanta=1),
        **config_kwargs,
    )
    return ClusterSimulator(nodes, controller, FixedQuantumPolicy(window), config)


def run_collecting(factory):
    """Run a fresh simulator, returning (result, per-quantum snapshots)."""
    sim = factory()
    snaps = []
    sim.checkpoint_sink = snaps.append
    return sim.run(), snaps


def resume_from(factory, snapshot):
    """Rebuild, restore *snapshot*, run to completion."""
    sim = factory()
    sim.checkpoint_sink = lambda _snap: None
    restore_snapshot(sim, snapshot)
    return sim.run()


def assert_identical(reference, resumed):
    assert dataclasses.asdict(reference) == dataclasses.asdict(resumed)


def probe_points(snaps):
    """First, middle, and last snapshot — the interesting resume points."""
    assert snaps, "run produced no snapshots"
    return sorted({0, len(snaps) // 2, len(snaps) - 1})


class TestScalarResume:
    def test_checked_pingpong_resumes_bit_identically(self, tmp_path):
        factory = lambda: build_sim(tmp_path, check=True)
        reference, snaps = run_collecting(factory)
        assert reference.completed
        for index in probe_points(snaps):
            assert_identical(reference, resume_from(factory, snaps[index]))

    def test_checkpointing_itself_changes_nothing(self, tmp_path):
        plain = ClusterSimulator(
            [SimulatedNode(i, app) for i, app in enumerate(pingpong_apps(20))],
            NetworkController(2, PAPER_NETWORK(2)),
            FixedQuantumPolicy(10 * US),
            ClusterConfig(seed=7),
        ).run()
        checkpointed, _ = run_collecting(lambda: build_sim(tmp_path))
        assert_identical(plain, checkpointed)

    def test_faulted_recovery_run_resumes_bit_identically(self, tmp_path):
        faults = FaultPlan(drop_rate=0.03, jitter_rate=0.02, jitter_max=5000)
        factory = lambda: build_sim(
            tmp_path,
            apps=pingpong_apps(30),
            transport=TransportConfig(recovery=RecoveryConfig()),
            faults=faults,
            check=True,
        )
        reference, snaps = run_collecting(factory)
        assert reference.completed
        assert reference.fault_stats is not None
        for index in probe_points(snaps):
            assert_identical(reference, resume_from(factory, snaps[index]))

    def test_traced_run_resumes_with_byte_identical_jsonl(self, tmp_path):
        def factory(path):
            return lambda: build_sim(
                tmp_path, trace=TraceConfig(jsonl_path=str(path))
            )

        ref_path = tmp_path / "ref.jsonl"
        sim = factory(ref_path)()
        snaps = []
        sim.checkpoint_sink = snaps.append
        reference = sim.run()
        assert sim.collector is not None
        sim.collector.close()
        ref_bytes = ref_path.read_bytes()

        for index in probe_points(snaps):
            resumed_path = tmp_path / f"resumed-{index}.jsonl"
            # Crash-resume semantics: the interrupted run's sink is on
            # disk, holding at least the snapshot's byte offset (usually
            # more — quanta past the snapshot already streamed).  The
            # restore truncates it back to the offset and continues.
            resumed_path.write_bytes(ref_bytes)
            resumed_sim = factory(resumed_path)()
            resumed_sim.checkpoint_sink = lambda _snap: None
            restore_snapshot(resumed_sim, snaps[index])
            resumed = resumed_sim.run()
            assert resumed_sim.collector is not None
            resumed_sim.collector.close()
            assert_identical(reference, resumed)
            # The trace *stream* continues byte-identically: the restore
            # seeks the sink to the captured offset and truncates.
            assert resumed_path.read_bytes() == ref_bytes


class TestCrossDriverResume:
    """Snapshots are driver-independent: capture under either stepper,
    restore onto either stepper, same bits (the jitter-stream remainder
    is normalized into the per-node model buffers at capture time)."""

    @pytest.mark.parametrize("capture_vec", [False, True])
    @pytest.mark.parametrize("restore_vec", [False, True])
    def test_all_capture_restore_combinations(
        self, tmp_path, capture_vec, restore_vec
    ):
        workload = IsWorkload(total_keys=2**12, iterations=2, ops_per_key=8)

        def factory(vec):
            return build_sim(
                tmp_path,
                apps=workload.build_apps(8),
                num_nodes=8,
                vectorized=vec,
                window=5 * US,
            )

        reference, snaps = run_collecting(lambda: factory(capture_vec))
        index = len(snaps) // 2
        resumed = resume_from(lambda: factory(restore_vec), snaps[index])
        assert_identical(reference, resumed)


class TestShardedInteraction:
    def test_checkpointed_run_falls_back_to_serial(self, tmp_path):
        """Sharding a checkpointed run degrades to serial (bit-identical
        anyway) with a reported reason, like traced/faulted runs do."""
        outcome = run_sharded(lambda: build_sim(tmp_path), shards=2)
        assert outcome.shards == 1
        assert outcome.fallback_reason is not None
        assert "checkpoint" in outcome.fallback_reason

    def test_supervised_run_falls_back_to_serial(self):
        def factory():
            sim = ClusterSimulator(
                [SimulatedNode(i, a) for i, a in enumerate(pingpong_apps(5))],
                NetworkController(2, PAPER_NETWORK(2)),
                FixedQuantumPolicy(10 * US),
                ClusterConfig(seed=7),
            )
            sim.supervision = lambda now, window: None
            return sim

        outcome = run_sharded(factory, shards=2)
        assert outcome.shards == 1
        assert outcome.fallback_reason is not None
        assert "supervised" in outcome.fallback_reason

    def test_snapshot_restores_identically_regardless_of_shard_request(
        self, tmp_path
    ):
        """A snapshot taken under a shard-requesting config restores and
        completes bit-identically: sharded execution is serial-identical,
        so 'restore onto either driver' holds by construction."""
        factory = lambda: build_sim(tmp_path, shards=2)
        reference, snaps = run_collecting(factory)
        resumed = resume_from(factory, snaps[len(snaps) // 2])
        assert_identical(reference, resumed)


class TestCadence:
    def test_quantum_cadence_counts_boundaries(self, tmp_path):
        sim = build_sim(tmp_path)
        sim.config = dataclasses.replace(
            sim.config,
            checkpoint=CheckpointConfig(directory=str(tmp_path), every_quanta=4),
        )
        snaps = []
        sim.checkpoint_sink = snaps.append
        result = sim.run()
        total = result.quantum_stats.quanta
        assert 0 < len(snaps) <= total // 4 + 1

    def test_sim_time_cadence(self, tmp_path):
        sim = build_sim(tmp_path)
        sim.config = dataclasses.replace(
            sim.config,
            checkpoint=CheckpointConfig(
                directory=str(tmp_path), every_sim_time=100 * US
            ),
        )
        snaps = []
        sim.checkpoint_sink = snaps.append
        result = sim.run()
        assert snaps
        assert len(snaps) <= result.sim_time // (100 * US) + 1
        # Snapshots are ordered by simulated time and spaced >= the cadence.
        times = [snap.sim_time for snap in snaps]
        assert times == sorted(times)
        assert all(b - a >= 100 * US for a, b in zip(times, times[1:]))

    def test_default_sink_writes_to_the_store(self, tmp_path):
        result, _ = (build_sim(tmp_path).run(), None)
        store = CheckpointStore(tmp_path)
        snapshot = store.load("run")
        assert snapshot is not None
        assert snapshot.sim_time <= result.sim_time
        resumed = resume_from(lambda: build_sim(tmp_path), snapshot)
        assert resumed.completed


class TestGuards:
    def test_capture_requires_app_log(self):
        # A simulator built without a checkpoint config records no app
        # input log, so there is nothing sound to capture.
        sim = ClusterSimulator(
            [SimulatedNode(i, a) for i, a in enumerate(pingpong_apps(2))],
            NetworkController(2, PAPER_NETWORK(2)),
            FixedQuantumPolicy(10 * US),
            ClusterConfig(seed=7),
        )
        with pytest.raises(RuntimeError, match="input log"):
            capture_snapshot(
                sim,
                now=0,
                host=0.0,
                q_state=sim.policy.initial(),
                quantum_stats=None,
                breakdown=None,
                timeline=None,
            )

    def test_restore_requires_fresh_simulator(self, tmp_path):
        factory = lambda: build_sim(tmp_path)
        _, snaps = run_collecting(factory)
        used = factory()
        used.run()
        with pytest.raises(RuntimeError, match="fresh"):
            restore_snapshot(used, snaps[0])
