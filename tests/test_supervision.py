"""Supervised execution: deadlines, hang detection, retry policy."""

import pickle
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.analysis.invariants import InvariantViolation
from repro.core import (
    ClusterConfig,
    ClusterSimulator,
    DeadlockError,
    FixedQuantumPolicy,
)
from repro.engine.units import MICROSECOND
from repro.harness.experiment import ExperimentRunner
from repro.harness.supervise import (
    ProgressWatchdog,
    RunTimeout,
    is_transient,
    retry_transient,
)
from repro.network import NetworkController, PAPER_NETWORK
from repro.node import ComputeTime, Recv, Send, SimulatedNode
from repro.shard.driver import WorkerFailure
from repro.workloads import PingPongWorkload

US = MICROSECOND


def pingpong_apps(rounds):
    def pinger():
        for _ in range(rounds):
            yield Send(dst=1, nbytes=64)
            yield Recv(src=1)
            yield ComputeTime(50 * US)

    def ponger():
        for _ in range(rounds):
            yield Recv(src=0)
            yield Send(dst=0, nbytes=64)

    return [pinger(), ponger()]


def build_sim():
    nodes = [SimulatedNode(i, a) for i, a in enumerate(pingpong_apps(10))]
    return ClusterSimulator(
        nodes,
        NetworkController(2, PAPER_NETWORK(2)),
        FixedQuantumPolicy(10 * US),
        ClusterConfig(seed=7),
    )


class TestRunTimeout:
    def test_message_carries_diagnostics(self):
        error = RunTimeout(
            "deadline",
            label="IS n=8",
            sim_time=123_000,
            window=10_000,
            quanta=42,
            elapsed=7.5,
        )
        text = str(error)
        assert "IS n=8" in text
        assert "deadline" in text
        assert "42 quanta" in text

    def test_pickles_across_process_boundaries(self):
        error = RunTimeout(
            "stall",
            label="x",
            sim_time=5,
            window=7,
            quanta=9,
            elapsed=1.25,
        )
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, RunTimeout)
        assert (clone.reason, clone.label, clone.sim_time) == ("stall", "x", 5)
        assert (clone.window, clone.quanta, clone.elapsed) == (7, 9, 1.25)

    def test_rejects_non_positive_bounds(self):
        with pytest.raises(ValueError):
            ProgressWatchdog(run_timeout=0)
        with pytest.raises(ValueError):
            ProgressWatchdog(stall_timeout=-1)


class TestProgressWatchdog:
    def test_deadline_fires_with_last_quantum_diagnostics(self):
        watchdog = ProgressWatchdog(label="t", run_timeout=0.01)

        def body():
            watchdog.beat(500, 10)  # within budget
            time.sleep(0.05)
            watchdog.beat(600, 10)  # over budget — beat itself raises
            raise AssertionError("deadline never enforced")

        with pytest.raises(RunTimeout) as excinfo:
            watchdog.run(body)
        assert excinfo.value.reason == "deadline"
        # Either the monitor interrupted the sleep (sim_time from the
        # first beat) or the second beat noticed the spent budget.
        assert excinfo.value.sim_time in (500, 600)
        assert excinfo.value.window == 10
        assert excinfo.value.elapsed > 0

    def test_monitor_interrupts_a_stalled_run(self):
        watchdog = ProgressWatchdog(label="t", stall_timeout=0.05)
        with pytest.raises(RunTimeout) as excinfo:
            watchdog.run(lambda: time.sleep(5.0))
        assert excinfo.value.reason == "stall"

    def test_real_ctrl_c_is_not_converted(self):
        watchdog = ProgressWatchdog(label="t", run_timeout=60.0)

        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            watchdog.run(interrupted)

    def test_no_bounds_means_no_monitor_thread(self):
        watchdog = ProgressWatchdog(label="t")
        with watchdog:
            assert watchdog._monitor is None
            watchdog.beat(0, 10)  # never raises


class TestSupervisionHook:
    def test_beat_called_once_per_event_quantum(self):
        beats = []
        sim = build_sim()
        sim.supervision = lambda now, window: beats.append((now, window))
        result = sim.run()
        assert result.completed
        assert len(beats) >= result.quantum_stats.quanta - sim.perf.ff_quanta
        # Simulated time at the beats is monotonically non-decreasing.
        times = [now for now, _ in beats]
        assert times == sorted(times)

    def test_supervision_changes_no_result_bit(self):
        import dataclasses

        plain = build_sim().run()
        supervised_sim = build_sim()
        supervised_sim.supervision = lambda now, window: None
        supervised = supervised_sim.run()
        assert dataclasses.asdict(plain) == dataclasses.asdict(supervised)

    def test_runner_deadline_raises_structured_timeout(self):
        runner = ExperimentRunner(seed=3, run_timeout=1e-6)
        with pytest.raises(RunTimeout) as excinfo:
            runner.run(PingPongWorkload(), 2, FixedQuantumPolicy(10 * US))
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.quanta >= 1


class TestRetryPolicy:
    def test_transient_classification(self):
        assert is_transient(RunTimeout("deadline"))
        assert is_transient(BrokenProcessPool())
        assert is_transient(WorkerFailure("worker 3 died"))
        assert not is_transient(InvariantViolation("rule", "detail"))
        assert not is_transient(DeadlockError("stuck"))
        assert not is_transient(ValueError("config"))

    def test_transient_failures_retry_with_backoff(self):
        calls = []
        delays = []

        def flaky():
            calls.append(None)
            if len(calls) < 3:
                raise RunTimeout("deadline")
            return "done"

        result = retry_transient(
            flaky,
            retries=5,
            base_delay=0.001,
            on_retry=lambda error, attempt, delay: delays.append(delay),
        )
        assert result == "done"
        assert len(calls) == 3
        assert delays == [0.001, 0.002]  # exponential

    def test_deterministic_errors_fail_fast(self):
        calls = []

        def deterministic():
            calls.append(None)
            raise InvariantViolation("rule", "same bits every time")

        with pytest.raises(InvariantViolation):
            retry_transient(deterministic, retries=5, base_delay=0.001)
        assert len(calls) == 1

    def test_exhausted_retries_raise_the_last_error(self):
        calls = []

        def always_transient():
            calls.append(None)
            raise RunTimeout("stall")

        with pytest.raises(RunTimeout):
            retry_transient(always_transient, retries=2, base_delay=0.001)
        assert len(calls) == 3  # initial attempt + 2 retries

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            retry_transient(lambda: None, retries=-1)
