"""Tests for deterministic fault injection and transport recovery.

The load-bearing guarantees of :mod:`repro.faults`:

* **Reproducibility** — a faulted run is a pure function of
  (configuration, seed): bit-identical on replay, bit-identical between
  the serial and the process-pool paths, and an all-zero plan consumes
  zero RNG draws so its runs are bit-identical to fault-free runs while
  still hashing to a distinct cache key.
* **Recovery** — the per-flow RTO/retransmission transport delivers
  every workload through 1% and 5% uniform loss, through partitions,
  and through duplication, with bounded retries.
* **Accounting** — injector statistics, transport recovery counters, and
  the causality sanitizer's independent tallies all reconcile.
"""

import dataclasses
import json

import pytest

from repro.analysis.invariants import CausalitySanitizer, InvariantViolation
from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.core.cluster import RunResult
from repro.core.quantum import QuantumStats
from repro.core.stats import HostCostBreakdown
from repro.engine.units import MICROSECOND
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    LinkPartition,
    NodeStall,
    PRESETS,
    load_plan,
)
from repro.harness.configs import PolicySpec
from repro.harness.parallel import (
    ParallelRunner,
    RunnerSettings,
    record_from_json,
    record_to_json,
)
from repro.network import NetworkController, PAPER_NETWORK
from repro.network.controller import ControllerStats
from repro.node import SimulatedNode
from repro.node.transport import (
    RecoveryConfig,
    RetryExhausted,
    TransportConfig,
    TransportStats,
)
from repro.engine.rng import RngStreams
from tests.test_robustness import SMALL

US = MICROSECOND

RECOVERY = TransportConfig(recovery=RecoveryConfig())


def run(workload, size, plan, transport=None, seed=6, check=True, **config_kwargs):
    nodes = [
        SimulatedNode(i, app, transport=transport)
        for i, app in enumerate(workload.build_apps(size))
    ]
    controller = NetworkController(size, PAPER_NETWORK(size))
    config = ClusterConfig(seed=seed, faults=plan, check=check, **config_kwargs)
    sim = ClusterSimulator(nodes, controller, FixedQuantumPolicy(US), config)
    return sim.run()


def small_is():
    return SMALL["IS"]()


def fingerprint(result):
    """Everything observable about a run, for bit-identity comparisons."""
    return (
        result.sim_time,
        result.host_time,
        result.makespan,
        dataclasses.asdict(result.controller_stats),
        [dataclasses.asdict(s) for s in result.node_stats],
        result.app_finish_times,
    )


# --------------------------------------------------------------------- #
# The declarative plan
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(jitter_rate=0.5)  # jitter_max missing

    def test_partition_validated(self):
        with pytest.raises(ValueError):
            LinkPartition(start=5, end=5, nodes=(0,))
        with pytest.raises(ValueError):
            LinkPartition(start=0, end=10, nodes=())
        with pytest.raises(ValueError):
            LinkPartition(start=0, end=10, nodes=(1, 1))

    def test_stall_validated(self):
        with pytest.raises(ValueError):
            NodeStall(node=0, start=10, end=5)
        with pytest.raises(ValueError):
            NodeStall(node=0, start=0, end=10, factor=0.5)

    def test_partition_cuts_only_across_the_cut(self):
        partition = LinkPartition(start=100, end=200, nodes=(0, 1))
        assert partition.cuts(0, 2, 150)  # crosses the cut
        assert partition.cuts(2, 1, 150)
        assert not partition.cuts(0, 1, 150)  # both inside
        assert not partition.cuts(2, 3, 150)  # both outside
        assert not partition.cuts(0, 2, 99)  # before the window
        assert not partition.cuts(0, 2, 200)  # window is half-open

    def test_round_trips_through_json(self):
        plan = PRESETS["flaky"]
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan
        nested = FaultPlan(
            partitions=(LinkPartition(start=1, end=2, nodes=(0,)),),
            stalls=(NodeStall(node=1, start=3, end=4, factor=2.0),),
        )
        assert FaultPlan.from_dict(json.loads(json.dumps(nested.to_dict()))) == nested

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"drop_rate": 0.1, "packet_loss": 0.2})

    def test_requires_recovery(self):
        assert FaultPlan(drop_rate=0.01).requires_recovery()
        assert FaultPlan(duplicate_rate=0.01).requires_recovery()
        assert FaultPlan(
            partitions=(LinkPartition(start=0, end=1, nodes=(0,)),)
        ).requires_recovery()
        assert not FaultPlan(jitter_rate=0.5, jitter_max=100).requires_recovery()
        assert not FaultPlan(
            stalls=(NodeStall(node=0, start=0, end=1),)
        ).requires_recovery()

    def test_load_plan_resolves_presets_and_files(self, tmp_path):
        assert load_plan("lossy-5") is PRESETS["lossy-5"]
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"drop_rate": 0.03, "jitter_rate": 0.1,
                                    "jitter_max": 1000}))
        assert load_plan(str(path)) == FaultPlan(
            drop_rate=0.03, jitter_rate=0.1, jitter_max=1000
        )
        with pytest.raises(ValueError, match="neither a preset"):
            load_plan("no-such-plan")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="cannot parse"):
            load_plan(str(bad))


# --------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------- #


class TestDeterminism:
    def test_null_plan_bit_identical_to_no_plan(self):
        """An all-zero plan consumes zero RNG draws: same bits as no plan."""
        assert fingerprint(run(small_is(), 4, None)) == fingerprint(
            run(small_is(), 4, FaultPlan())
        )

    def test_same_seed_same_plan_replays_identically(self):
        first = run(small_is(), 4, PRESETS["flaky"], transport=RECOVERY)
        second = run(small_is(), 4, PRESETS["flaky"], transport=RECOVERY)
        assert fingerprint(first) == fingerprint(second)
        assert dataclasses.asdict(first.fault_stats) == dataclasses.asdict(
            second.fault_stats
        )

    def test_different_seeds_draw_different_faults(self):
        plan = FaultPlan(drop_rate=0.3)
        a = run(small_is(), 4, plan, transport=RECOVERY, seed=1)
        b = run(small_is(), 4, plan, transport=RECOVERY, seed=2)
        assert fingerprint(a) != fingerprint(b)

    def test_serial_and_pool_runs_are_bit_identical(self, tmp_path):
        """Same seed + plan -> identical records from -j 1 and -j 3."""
        spec = PolicySpec("1us", lambda: FixedQuantumPolicy(US))
        requests = [
            (SMALL["IS"](), 4, spec),
            (SMALL["EP"](), 4, spec),
            (SMALL["CG"](), 4, spec),
        ]

        def batch(workers, cache_dir):
            runner = ParallelRunner(
                seed=11,
                faults=PRESETS["lossy-1"],
                transport=RECOVERY,
                max_workers=workers,
                cache_dir=cache_dir,
            )
            return runner.run_many(requests)

        serial = batch(1, tmp_path / "serial")
        pooled = batch(3, tmp_path / "pooled")
        assert serial == pooled

    def test_null_plan_distinct_cache_key_identical_result(self, tmp_path):
        """FaultPlan() caches separately from faults=None, same payload bits."""
        none_settings = RunnerSettings(seed=3, faults=None)
        null_settings = RunnerSettings(seed=3, faults=FaultPlan())
        assert "faults" not in none_settings.key_fragment(4)
        assert null_settings.key_fragment(4)["faults"] == json.loads(
            json.dumps(FaultPlan().to_dict())
        )
        assert none_settings.key_fragment(4) != null_settings.key_fragment(4)

    def test_fault_free_key_fragment_unchanged_by_this_layer(self):
        """Pre-fault cache keys survive: no recovery block, no faults block."""
        fragment = RunnerSettings(
            transport=TransportConfig(window_bytes=8192)
        ).key_fragment(2)
        assert "recovery" not in fragment["transport"]
        assert "faults" not in fragment
        recovered = RunnerSettings(transport=RECOVERY).key_fragment(2)
        assert recovered["transport"]["recovery"] is not None


# --------------------------------------------------------------------- #
# Recovery under loss, duplication, partitions
# --------------------------------------------------------------------- #


class TestRecovery:
    @pytest.mark.parametrize("name", sorted(SMALL))
    @pytest.mark.parametrize("rate", [0.01, 0.05])
    def test_every_workload_survives_uniform_loss(self, name, rate):
        result = run(SMALL[name](), 4, FaultPlan(drop_rate=rate), transport=RECOVERY)
        assert result.completed
        sent = sum(node.messages_sent for node in result.node_stats)
        received = sum(node.messages_received for node in result.node_stats)
        assert sent == received  # every application message delivered
        if result.fault_stats.total_drops > 0:
            assert sum(t.retransmits for t in result.transport_stats) > 0

    def test_partition_heals_and_traffic_resumes(self):
        plan = FaultPlan(
            partitions=(LinkPartition(start=10_000, end=60_000, nodes=(0,)),)
        )
        result = run(small_is(), 4, plan, transport=RECOVERY)
        assert result.completed
        assert result.fault_stats.partition_drops > 0
        assert sum(t.retransmits for t in result.transport_stats) > 0

    def test_duplicates_are_suppressed_before_reassembly(self):
        result = run(
            small_is(), 4, FaultPlan(duplicate_rate=0.5), transport=RECOVERY
        )
        assert result.completed
        assert result.fault_stats.frames_duplicated > 0
        dropped = sum(t.duplicates_dropped for t in result.transport_stats)
        assert 0 < dropped <= result.fault_stats.frames_duplicated
        sent = sum(node.messages_sent for node in result.node_stats)
        received = sum(node.messages_received for node in result.node_stats)
        assert sent == received  # no double-delivery into the applications

    def test_total_loss_exhausts_retries(self):
        with pytest.raises(RetryExhausted):
            run(small_is(), 2, FaultPlan(drop_rate=1.0), transport=RECOVERY)

    def test_loss_without_recovery_transport_is_rejected_up_front(self):
        with pytest.raises(ValueError, match="recovery-enabled transport"):
            run(small_is(), 4, PRESETS["lossy-1"])
        with pytest.raises(ValueError, match="recovery-enabled transport"):
            run(small_is(), 4, PRESETS["lossy-1"],
                transport=TransportConfig())  # transport without recovery

    def test_plan_naming_missing_node_is_rejected(self):
        plan = FaultPlan(stalls=(NodeStall(node=9, start=0, end=1_000),))
        with pytest.raises(ValueError, match="names nodes \\[9\\]"):
            run(small_is(), 4, plan)

    def test_jitter_needs_no_recovery_transport(self):
        result = run(small_is(), 4, PRESETS["jittery"])
        assert result.completed
        assert result.fault_stats.frames_delayed > 0
        assert result.fault_stats.extra_delay_total > 0
        assert result.transport_stats is None  # plain NIC path throughout


# --------------------------------------------------------------------- #
# Node stalls
# --------------------------------------------------------------------- #


class TestNodeStalls:
    PLAN = FaultPlan(stalls=(NodeStall(node=0, start=10_000, end=50_000, factor=8.0),))

    def test_stall_costs_host_time_not_sim_time(self):
        base = run(small_is(), 4, None)
        stalled = run(small_is(), 4, self.PLAN)
        assert stalled.completed
        assert stalled.fault_stats.stall_quanta > 0
        assert stalled.sim_time == base.sim_time  # simulated behaviour intact
        assert stalled.makespan == base.makespan
        assert stalled.host_time > base.host_time  # the farm pays for it

    def test_stall_fast_forward_observationally_equivalent(self):
        # EP's long compute phases engage the accelerator; the stall factor
        # must multiply the vectorised path exactly like the event path.
        fast = run(SMALL["EP"](), 4, self.PLAN, fast_forward=True)
        slow = run(SMALL["EP"](), 4, self.PLAN, fast_forward=False)
        assert fast.sim_time == slow.sim_time
        assert fast.makespan == slow.makespan
        assert fast.fault_stats.stall_quanta == slow.fault_stats.stall_quanta
        assert abs(fast.host_time - slow.host_time) <= 1e-9 * max(fast.host_time, 1.0)


# --------------------------------------------------------------------- #
# Injector draw discipline
# --------------------------------------------------------------------- #


class TestInjectorDrawDiscipline:
    def test_null_plan_consumes_zero_draws(self):
        rng = RngStreams(1)
        injector = FaultInjector(FaultPlan(), rng)
        probe_before = RngStreams(1).stream("faults").random()
        from repro.network.packet import Packet

        packet = Packet(src=0, dst=1, size_bytes=100, send_time=0)
        for _ in range(50):
            verdict = injector.link_verdict(packet, 1)
            assert not verdict.drop and not verdict.duplicate
            assert verdict.extra_latency == 0
        assert injector._rng.random() == probe_before  # stream untouched

    def test_partitions_consume_no_draws(self):
        plan = FaultPlan(partitions=(LinkPartition(start=0, end=1_000, nodes=(0,)),))
        rng = RngStreams(1)
        injector = FaultInjector(plan, rng)
        probe_before = RngStreams(1).stream("faults").random()
        from repro.network.packet import Packet

        dropped = injector.link_verdict(
            Packet(src=0, dst=1, size_bytes=64, send_time=500), 1
        )
        assert dropped.drop and dropped.drop_reason == "partition"
        assert injector._rng.random() == probe_before


# --------------------------------------------------------------------- #
# Sanitizer fault invariants
# --------------------------------------------------------------------- #


def fault_sanitizer():
    return CausalitySanitizer(min_quantum=US, max_quantum=US, min_latency=2 * US)


def fault_result(fault_stats=None, transport_stats=None):
    return RunResult(
        sim_time=0,
        host_time=0.0,
        completed=True,
        breakdown=HostCostBreakdown(),
        quantum_stats=QuantumStats(),
        controller_stats=ControllerStats(),
        node_stats=[],
        app_results=[],
        app_finish_times=[],
        timeline=None,
        fault_stats=fault_stats,
        transport_stats=transport_stats,
    )


class TestSanitizerFaultInvariants:
    def test_unknown_drop_reason_rejected(self):
        from repro.network.packet import Packet

        sanitizer = fault_sanitizer()
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.on_fault_drop(
                Packet(src=0, dst=1, size_bytes=10, send_time=0), 1, "gremlins"
            )
        assert excinfo.value.invariant == "fault-accounting"

    def test_drop_without_plan_rejected_at_run_end(self):
        from repro.network.packet import Packet

        sanitizer = fault_sanitizer()
        sanitizer.on_fault_drop(
            Packet(src=0, dst=1, size_bytes=10, send_time=0), 1, "loss"
        )
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.on_run_end(fault_result(fault_stats=None))
        assert excinfo.value.invariant == "fault-accounting"

    def test_drop_counter_drift_rejected(self):
        sanitizer = fault_sanitizer()  # witnessed zero drops
        stats = FaultStats(frames_dropped=2)
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.on_run_end(fault_result(fault_stats=stats))
        assert excinfo.value.invariant == "fault-accounting"

    def test_inconsistent_delay_counters_rejected(self):
        sanitizer = fault_sanitizer()
        stats = FaultStats(frames_delayed=3, extra_delay_total=0)
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.on_run_end(fault_result(fault_stats=stats))
        assert excinfo.value.invariant == "fault-accounting"

    def test_timeout_retransmit_mismatch_rejected(self):
        sanitizer = fault_sanitizer()
        transports = [TransportStats(timeouts=2, retransmits=1)]
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.on_run_end(fault_result(transport_stats=transports))
        assert excinfo.value.invariant == "recovery-accounting"

    def test_excess_duplicate_suppression_rejected(self):
        sanitizer = fault_sanitizer()
        transports = [TransportStats(duplicates_dropped=5)]
        stats = FaultStats(frames_duplicated=1)
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.on_run_end(
                fault_result(fault_stats=stats, transport_stats=transports)
            )
        assert excinfo.value.invariant == "recovery-accounting"

    def test_consistent_fault_run_passes(self):
        sanitizer = fault_sanitizer()
        stats = FaultStats(frames_delayed=2, extra_delay_total=900)
        transports = [TransportStats(timeouts=1, retransmits=1)]
        sanitizer.on_run_end(
            fault_result(fault_stats=stats, transport_stats=transports)
        )


# --------------------------------------------------------------------- #
# Reporting and serialization
# --------------------------------------------------------------------- #


class TestReporting:
    def test_summary_carries_fault_and_recovery_blocks(self):
        result = run(small_is(), 4, PRESETS["lossy-5"], transport=RECOVERY)
        text = result.summary()
        assert "faults[" in text and "recovery[" in text

    def test_record_round_trips_fault_stats(self, tmp_path):
        runner = ParallelRunner(
            seed=9,
            faults=PRESETS["lossy-1"],
            transport=RECOVERY,
            max_workers=1,
            cache_dir=tmp_path,
        )
        spec = PolicySpec("1us", lambda: FixedQuantumPolicy(US))
        record = runner.run_spec(SMALL["IS"](), 4, spec)
        rebuilt = record_from_json(json.loads(json.dumps(record_to_json(record))))
        assert rebuilt == record
        assert rebuilt.result.fault_stats == record.result.fault_stats
        assert rebuilt.result.transport_stats == record.result.transport_stats
        # ... and the second runner replays it from disk, stats included.
        warm = ParallelRunner(
            seed=9,
            faults=PRESETS["lossy-1"],
            transport=RECOVERY,
            max_workers=1,
            cache_dir=tmp_path,
        )
        cached = warm.run_spec(SMALL["IS"](), 4, spec)
        assert cached == record
        assert warm.cache is not None and warm.cache.hits == 1

    def test_fault_free_record_json_has_no_fault_keys(self):
        record = ParallelRunner(seed=9, max_workers=1, use_cache=False).run_spec(
            SMALL["EP"](), 2, PolicySpec("1us", lambda: FixedQuantumPolicy(US))
        )
        payload = record_to_json(record)
        assert "fault_stats" not in payload["result"]
        assert "transport_stats" not in payload["result"]

    def test_fault_report_table(self):
        from repro.harness.report import fault_report

        faulted = run(small_is(), 4, PRESETS["lossy-5"], transport=RECOVERY)
        clean = run(small_is(), 4, None)
        text = fault_report([("lossy", faulted), ("clean", clean)])
        assert "lossy" in text and "retransmits" in text
        assert fault_report([("clean", clean)]) == ""
