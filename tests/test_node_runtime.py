"""Tests for the SimulatedNode runtime: app stepping, sends, recvs, blocking."""

import pytest

from repro.node import (
    ANY_SOURCE,
    Compute,
    ComputeTime,
    NicModel,
    Recv,
    Send,
    SimulatedNode,
    Sleep,
)
from repro.node.hostmodel import BUSY, IDLE
from repro.node.node import NodeCosts


def drain(node, limit=1000):
    """Process local events until the node quiesces."""
    for _ in range(limit):
        if node.peek_time() is None:
            return
        node.pop_and_handle()
    raise AssertionError("node did not quiesce")


def make_node(app, node_id=0, emit_sink=None):
    node = SimulatedNode(node_id, app)
    if emit_sink is not None:
        node.emit_hook = lambda _node, packet: emit_sink.append(packet)
    node.start()
    return node


class TestComputeAndSleep:
    def test_compute_schedules_wake_at_cpu_time(self):
        def app():
            yield Compute(ops=2.6e9)  # one simulated second

        node = make_node(app())
        node.pop_and_handle()  # initial step -> Compute
        assert node.activity == BUSY
        assert node.peek_time() == 1_000_000_000
        node.pop_and_handle()
        assert node.finished
        assert node.app_finish_time == 1_000_000_000

    def test_compute_time_direct_duration(self):
        def app():
            yield ComputeTime(12345)

        node = make_node(app())
        node.pop_and_handle()
        assert node.peek_time() == 12345

    def test_sleep_marks_idle(self):
        def app():
            yield Sleep(500)
            yield ComputeTime(1)

        node = make_node(app())
        node.pop_and_handle()
        assert node.activity == IDLE
        node.pop_and_handle()
        assert node.activity == BUSY

    def test_finished_node_is_idle(self):
        def app():
            return
            yield  # pragma: no cover

        node = make_node(app())
        node.pop_and_handle()
        assert node.finished
        assert node.activity == IDLE
        assert node.peek_time() is None
        assert node.app_result is None


class TestSend:
    def test_send_emits_frames_through_hook(self):
        emitted = []

        def app():
            yield Send(dst=1, nbytes=20_000, tag=4)

        node = make_node(app(), emit_sink=emitted)
        drain(node)
        assert len(emitted) == 3
        assert all(packet.dst == 1 for packet in emitted)
        assert node.stats.messages_sent == 1
        assert node.finished

    def test_send_cpu_cost_advances_app(self):
        def app():
            yield Send(dst=1, nbytes=1000)

        costs = NodeCosts(send_base=2_000, send_per_byte=1.0)
        node = SimulatedNode(0, app(), costs=costs)
        node.emit_hook = lambda n, p: None
        node.start()
        drain(node)
        assert node.app_finish_time == 3_000

    def test_emit_without_hook_raises(self):
        def app():
            yield Send(dst=1, nbytes=10)

        node = SimulatedNode(0, app())
        node.start()
        node.pop_and_handle()  # app step queues emit event
        with pytest.raises(RuntimeError):
            drain(node)


class TestRecv:
    def deliver_message(self, node, src=1, tag=0, nbytes=16, at=5_000):
        """Build a frame from a peer NIC and deliver it at *at*."""
        peer = NicModel(src)
        frame = peer.build_frames(dst=node.node_id, nbytes=nbytes, tag=tag, payload="v", now=0)[0]
        frame.due_time = at
        frame.deliver_time = at
        node.deliver(frame, at)

    def test_recv_blocks_until_delivery(self):
        results = []

        def app():
            message = yield Recv(src=ANY_SOURCE)
            results.append(message)

        node = make_node(app())
        node.pop_and_handle()  # app blocks
        assert node.blocked
        assert node.activity == IDLE
        assert node.peek_time() is None
        self.deliver_message(node, at=7_000)
        drain(node)
        assert not node.blocked
        assert results[0].payload == "v"
        assert node.stats.blocked_time == 7_000
        assert node.app_finish_time == 7_000 + node.costs.recv_cost(16)

    def test_recv_finds_already_arrived_message(self):
        def app():
            yield ComputeTime(10_000)
            message = yield Recv()
            assert message.tag == 2

        node = make_node(app())
        node.pop_and_handle()  # start compute
        self.deliver_message(node, tag=2, at=5_000)
        drain(node)
        assert node.finished
        assert node.stats.blocked_time == 0

    def test_recv_filter_ignores_non_matching(self):
        def app():
            message = yield Recv(src=3)
            return message.src

        node = make_node(app())
        node.pop_and_handle()
        self.deliver_message(node, src=1, at=1_000)
        drain(node)
        assert node.blocked  # message from 1 does not satisfy Recv(src=3)
        self.deliver_message(node, src=3, at=2_000)
        drain(node)
        assert node.app_result == 3

    def test_straggler_stats_counted(self):
        def app():
            yield Recv()

        node = make_node(app())
        node.pop_and_handle()
        peer = NicModel(1)
        frame = peer.build_frames(dst=0, nbytes=8, tag=0, payload=None, now=0)[0]
        frame.due_time = 1_000
        frame.deliver_time = 4_000  # straggler: 3us late
        node.deliver(frame, 4_000)
        drain(node)
        assert node.stats.straggler_messages == 1
        assert node.stats.straggler_delay == 3_000


class TestErrors:
    def test_unknown_request_type_rejected(self):
        def app():
            yield "not a request"

        node = make_node(app())
        with pytest.raises(TypeError):
            node.pop_and_handle()
