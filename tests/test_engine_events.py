"""Unit and property tests for the event queue and Event objects."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import Event, EventQueue


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1)

    def test_fire_runs_action_once(self):
        hits = []
        event = Event(5, action=lambda: hits.append(1))
        event.fire()
        assert hits == [1]
        assert not event.alive

    def test_fire_without_action_is_noop(self):
        event = Event(5, tag="marker")
        event.fire()
        assert not event.alive

    def test_cancel_marks_dead(self):
        event = Event(5)
        assert event.alive
        event.cancel()
        assert not event.alive

    def test_payload_and_tag_are_carried(self):
        event = Event(1, tag="delivery", payload={"x": 1})
        assert event.tag == "delivery"
        assert event.payload == {"x": 1}


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek() is None
        assert queue.peek_time() is None
        with pytest.raises(IndexError):
            queue.pop()

    def test_orders_by_time(self):
        queue = EventQueue()
        queue.schedule(30, tag="c")
        queue.schedule(10, tag="a")
        queue.schedule(20, tag="b")
        assert [queue.pop().tag for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        for label in "abcde":
            queue.schedule(7, tag=label)
        assert [queue.pop().tag for _ in range(5)] == list("abcde")

    def test_cancel_skips_event(self):
        queue = EventQueue()
        keep = queue.schedule(1, tag="keep")
        drop = queue.schedule(0, tag="drop")
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.pop() is keep

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.schedule(1)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 0

    def test_cannot_push_cancelled_event(self):
        queue = EventQueue()
        event = Event(1)
        event.cancel()
        with pytest.raises(ValueError):
            queue.push(event)

    def test_cannot_push_twice(self):
        queue = EventQueue()
        event = queue.schedule(1)
        with pytest.raises(ValueError):
            queue.push(event)

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.schedule(4, tag="x")
        assert queue.peek().tag == "x"
        assert len(queue) == 1

    def test_pop_until_respects_limit(self):
        queue = EventQueue()
        for time in (1, 5, 9, 10, 11):
            queue.schedule(time)
        popped = [event.time for event in queue.pop_until(10)]
        assert popped == [1, 5, 9]
        assert queue.peek_time() == 10

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1)
        queue.schedule(2)
        queue.clear()
        assert not queue
        assert queue.peek() is None

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=0, max_size=200))
    def test_property_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.schedule(time)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(times)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1000), st.booleans()),
            min_size=0,
            max_size=120,
        )
    )
    def test_property_cancellation_removes_exactly_marked(self, entries):
        queue = EventQueue()
        kept = []
        for index, (time, cancel) in enumerate(entries):
            event = queue.schedule(time, tag=str(index))
            if cancel:
                queue.cancel(event)
            else:
                kept.append((time, index))
        popped = []
        while queue:
            event = queue.pop()
            popped.append((event.time, int(event.tag)))
        assert popped == sorted(kept)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=60))
    def test_property_len_tracks_live_events(self, times):
        queue = EventQueue()
        events = [queue.schedule(time) for time in times]
        assert len(queue) == len(times)
        for event in events[::2]:
            queue.cancel(event)
        assert len(queue) == len(times) - len(events[::2])


class TestCompaction:
    """The lazy-deletion heap must shed dead entries in bulk: cancelling
    most of a large queue may not leave the survivors buried under dead
    weight that every later push/pop has to sift around."""

    def test_dead_entry_counter_is_visible(self):
        queue = EventQueue()
        events = [queue.schedule(t) for t in range(10)]
        for event in events[:5]:
            queue.cancel(event)
        # Below the compaction threshold: the dead entries linger.
        assert queue.dead_entries == 5
        assert len(queue) == 5

    def test_compaction_triggers_when_dead_entries_dominate(self):
        queue = EventQueue()
        events = [queue.schedule(t) for t in range(100)]
        for event in events[:80]:
            queue.cancel(event)
        # Dead entries crossed the threshold repeatedly along the way;
        # bulk rebuilds kept them from ever dominating the heap.  The few
        # stragglers below the trigger point are bounded, not O(cancels).
        assert queue.dead_entries * 2 <= len(queue._heap)
        assert len(queue._heap) < 40  # 80 cancels did not pile up
        assert len(queue) == 20
        assert [queue.pop().time for _ in range(len(queue))] == list(range(80, 100))

    def test_pop_and_peek_maintain_the_dead_counter(self):
        queue = EventQueue()
        events = [queue.schedule(t) for t in range(20)]
        for event in events[:10:2]:
            queue.cancel(event)
        assert queue.dead_entries == 5
        # Popping past the dead heads consumes them and their counter.
        assert queue.pop().time == 1
        assert queue.dead_entries < 5

    def test_cancellation_churn_is_not_quadratic(self):
        """Structural bound, not a timing test: under heavy schedule/cancel
        churn the heap may never grow beyond the live entries plus the
        bounded dead allowance the compaction policy tolerates."""
        queue = EventQueue()
        live: list[Event] = []
        for wave in range(50):
            fresh = [queue.schedule(wave * 1000 + i) for i in range(100)]
            for event in fresh[:90]:
                queue.cancel(event)
            live.extend(fresh[90:])
            # Invariant enforced by cancel(): dead entries never dominate
            # (beyond the small fixed trigger threshold).
            assert (
                queue.dead_entries < EventQueue._COMPACT_MIN_DEAD
                or queue.dead_entries * 2 <= len(queue._heap)
            )
            assert len(queue._heap) <= 2 * len(queue) + EventQueue._COMPACT_MIN_DEAD
        assert len(queue) == 50 * 10
        popped = [queue.pop().time for _ in range(len(queue))]
        assert popped == sorted(popped)

    def test_schedule_many_matches_individual_schedules(self):
        bulk = EventQueue()
        single = EventQueue()
        items = [(7, "a"), (3, "b"), (7, "c"), (0, "d")]
        bulk.schedule_many(items, tag="emit")
        for time, payload in items:
            single.schedule(time, tag="emit", payload=payload)
        def drain(queue):
            return [(e.time, e.payload) for e in (queue.pop() for _ in range(len(queue)))]

        assert drain(bulk) == drain(single) == [(0, "d"), (3, "b"), (7, "a"), (7, "c")]

    def test_schedule_many_rejects_negative_times(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule_many([(1, None), (-1, None)])
