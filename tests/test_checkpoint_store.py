"""Crash-safety of the on-disk stores: snapshots and the result cache.

The contract under test: a SIGKILL at *any* instant during a write
leaves either the previous complete file or the new complete file on
disk — never a torn one — and anything that does end up unreadable is
quarantined, never silently trusted.
"""

import json
import os
import signal
import time

from repro.checkpoint import SNAPSHOT_VERSION, SimSnapshot, CheckpointStore
from repro.checkpoint.store import SUFFIX
from repro.harness.parallel import CACHE_VERSION, DiskResultCache


def make_snapshot(tag: bytes, sim_time=1000, quanta=4) -> SimSnapshot:
    return SimSnapshot(
        version=SNAPSHOT_VERSION,
        sim_time=sim_time,
        quanta=quanta,
        payload=tag * 64,
    )


class TestCheckpointStoreRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        snapshot = make_snapshot(b"a")
        store.save("run", snapshot, key="cfg-1")
        loaded = store.load("run", expect_key="cfg-1")
        assert loaded is not None
        assert loaded.payload == snapshot.payload
        assert loaded.sim_time == snapshot.sim_time
        assert loaded.quanta == snapshot.quanta
        assert loaded.digest == snapshot.digest

    def test_missing_label_is_a_plain_miss(self, tmp_path):
        assert CheckpointStore(tmp_path).load("nothing") is None

    def test_key_mismatch_is_a_miss_not_corruption(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", make_snapshot(b"a"), key="cfg-1")
        assert store.load("run", expect_key="cfg-2") is None
        # The file is intact: the right key still reads it.
        assert store.load("run", expect_key="cfg-1") is not None
        assert not list(tmp_path.glob("*.corrupt"))

    def test_save_overwrites_atomically(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", make_snapshot(b"a", sim_time=100))
        store.save("run", make_snapshot(b"b", sim_time=200))
        loaded = store.load("run")
        assert loaded is not None and loaded.sim_time == 200
        # No temp droppings left behind.
        assert sorted(p.suffix for p in tmp_path.iterdir()) == [SUFFIX]


class TestCheckpointStoreCorruption:
    def test_truncated_payload_is_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("run", make_snapshot(b"a"))
        path.write_bytes(path.read_bytes()[:-10])
        assert store.load("run") is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_garbage_header_is_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("run", make_snapshot(b"a"))
        path.write_bytes(b"not json\n" + b"x" * 32)
        assert store.load("run") is None
        assert path.with_suffix(".corrupt").exists()

    def test_stale_version_is_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("run", make_snapshot(b"a"))
        raw = path.read_bytes()
        newline = raw.index(b"\n")
        header = json.loads(raw[:newline])
        header["version"] = SNAPSHOT_VERSION + 1
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode() + raw[newline:]
        )
        assert store.load("run") is None
        assert path.with_suffix(".corrupt").exists()

    def test_quarantined_snapshot_does_not_shadow_a_fresh_save(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("run", make_snapshot(b"a"))
        path.write_bytes(b"garbage")
        assert store.load("run") is None
        store.save("run", make_snapshot(b"b", sim_time=777))
        loaded = store.load("run")
        assert loaded is not None and loaded.sim_time == 777


def _kill_mid_write(tmp_path, writer, verifier, *, rounds=25):
    """Fork a child that calls *writer* in a tight loop; SIGKILL it at
    randomized points; after every kill, *verifier* must succeed."""
    for round_index in range(rounds):
        pid = os.fork()
        if pid == 0:  # child: hammer the store until killed
            try:
                while True:
                    writer()
            finally:
                os._exit(0)
        time.sleep(0.001 * (round_index % 5))
        os.kill(pid, signal.SIGKILL)
        os.waitpid(pid, 0)
        verifier()


class TestKillDuringWrite:
    def test_sigkill_mid_snapshot_save_never_leaves_a_torn_file(self, tmp_path):
        store = CheckpointStore(tmp_path)
        baseline = make_snapshot(b"0", sim_time=1)
        store.save("run", baseline, key="k")
        # Large payload so kills land inside the write with high odds.
        big = make_snapshot(b"x", sim_time=2)
        big = SimSnapshot(
            version=big.version,
            sim_time=big.sim_time,
            quanta=big.quanta,
            payload=b"x" * (1 << 20),
        )

        def verify():
            loaded = store.load("run", expect_key="k")
            assert loaded is not None, "a kill destroyed the previous snapshot"
            assert loaded.sim_time in (1, 2)
            assert not list(tmp_path.glob("*.corrupt"))

        _kill_mid_write(
            tmp_path, lambda: store.save("run", big, key="k"), verify
        )

    def test_sigkill_mid_cache_put_never_leaves_a_torn_entry(self, tmp_path):
        """The DiskResultCache write path (fsync + atomic replace): a kill
        mid-``put`` leaves the old entry or the new one, never a torn file
        (which would show up as a ``.corrupt`` quarantine on read)."""
        from repro.core import FixedQuantumPolicy
        from repro.engine.units import MICROSECOND
        from repro.harness.experiment import ExperimentRunner
        from repro.workloads import PingPongWorkload

        runner = ExperimentRunner(seed=3)
        workload = PingPongWorkload()
        record = runner.run(workload, 2, FixedQuantumPolicy(10 * MICROSECOND))
        cache = DiskResultCache(tmp_path)
        payload = {"cache_version": CACHE_VERSION, "probe": "kill-test"}
        assert cache.put(payload, record)

        def verify():
            fresh = DiskResultCache(tmp_path)
            got = fresh.get(payload)
            assert got is not None, "a kill destroyed the previous entry"
            assert got.metric == record.metric
            assert not list(tmp_path.glob("*.corrupt"))

        _kill_mid_write(tmp_path, lambda: cache.put(payload, record), verify)
