"""The trace collector: zero observable effect, exact accounting.

The load-bearing property is acceptance-critical: installing (or not
installing) a collector must never change simulation results, and the
collector's tallies must reconcile exactly with the controller's own
statistics.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.quantum import AdaptiveQuantumPolicy, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.harness.configs import PolicySpec, ground_truth_policy
from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import RunnerSettings, Uncacheable, record_to_json
from repro.metrics.traffic import TrafficTrace
from repro.network.controller import NetworkController
from repro.network.latency import PAPER_NETWORK
from repro.node.node import SimulatedNode
from repro.obs.collector import TraceCollector, TraceConfig, run_slug
from repro.obs.events import PacketTrace, QuantumEnd
from repro.workloads import EpWorkload, IsWorkload

SEED = 7


def _ep():
    return EpWorkload(total_ops=2e7, chunks=4)


def _is():
    return IsWorkload(total_keys=2**15, iterations=2, ops_per_key=16)


def _adaptive():
    return PolicySpec(
        "dyn", lambda: AdaptiveQuantumPolicy(MICROSECOND, 1000 * MICROSECOND)
    )


def _fixed(us: int):
    return PolicySpec(f"{us}us", lambda: FixedQuantumPolicy(us * MICROSECOND))


class TestTracingIsObservational:
    def test_results_identical_with_and_without_tracing(self):
        """EP/IS matrix: traced and untraced runs report the same RunResult."""
        specs = [ground_truth_policy(), _adaptive(), _fixed(100)]
        for factory, sizes in [(_ep, (2, 4)), (_is, (2, 4))]:
            for size in sizes:
                for spec in specs:
                    plain = ExperimentRunner(seed=SEED)
                    traced = ExperimentRunner(seed=SEED, trace=TraceConfig())
                    a = plain.run_spec(factory(), size, spec)
                    b = traced.run_spec(factory(), size, spec)
                    assert b.obs is not None and a.obs is None
                    assert a.result == b.result, (factory, size, spec.label)
                    assert a.metric == b.metric

    def test_cache_key_fragment_unchanged_by_trace(self):
        with_trace = RunnerSettings(seed=SEED, trace=TraceConfig())
        without = RunnerSettings(seed=SEED)
        assert with_trace.key_fragment(4) == without.key_fragment(4)
        assert without.cacheable
        assert not with_trace.cacheable

    def test_traced_records_refuse_to_serialize(self):
        runner = ExperimentRunner(seed=SEED, trace=TraceConfig())
        record = runner.run_spec(_ep(), 2, _adaptive())
        with pytest.raises(Uncacheable):
            record_to_json(record)


class TestReconciliation:
    def test_straggler_tallies_match_controller_stats(self):
        # A 100us fixed quantum far above T guarantees stragglers on IS.
        runner = ExperimentRunner(seed=SEED, trace=TraceConfig(), check=True)
        record = runner.run_spec(_is(), 4, _fixed(100))
        stats = record.result.controller_stats
        obs = record.obs
        assert stats.stragglers > 0
        assert obs.straggler_packets == stats.stragglers
        assert obs.straggler_lag_total == stats.total_delay_error
        # The per-event lags in the ring agree with the exact tallies.
        lags = [e.lag for e in obs.packet_events() if e.straggler]
        assert len(lags) == obs.straggler_packets
        assert sum(lags) == obs.straggler_lag_total
        # Every routed data frame was observed.
        assert obs.total("packet") == stats.packets_routed

    def test_quantum_index_matches_quantum_stats(self):
        runner = ExperimentRunner(seed=SEED, trace=TraceConfig())
        record = runner.run_spec(_ep(), 2, _adaptive())
        assert record.obs.quantum_index == record.result.quantum_stats.quanta

    def test_quantum_spans_tile_the_run(self):
        runner = ExperimentRunner(seed=SEED, trace=TraceConfig())
        record = runner.run_spec(_is(), 2, _adaptive())
        quanta = record.obs.quantum_events()
        assert quanta, "expected quantum events in the ring"
        for event in quanta:
            assert event.quantum == event.time - event.start > 0
        # Adaptive decisions follow Algorithm 1's vocabulary.
        assert {e.decision for e in quanta} <= {"grow", "shrink", "hold", "final"}
        starts = [e.start for e in quanta]
        assert starts == sorted(starts)


class TestCollectorMechanics:
    def test_ring_bound_and_exact_counts(self):
        runner = ExperimentRunner(seed=SEED, trace=TraceConfig(capacity=64))
        record = runner.run_spec(_is(), 2, _adaptive())
        obs = record.obs
        assert len(obs) == 64
        assert obs.dropped > 0
        total = sum(obs.counts.values())
        assert total == len(obs) + obs.dropped
        # Exact tallies are unaffected by shedding.
        assert obs.total("packet") == record.result.controller_stats.packets_routed

    def test_zero_capacity_disables_ring(self):
        runner = ExperimentRunner(seed=SEED, trace=TraceConfig(capacity=0))
        record = runner.run_spec(_ep(), 2, _adaptive())
        obs = record.obs
        assert len(obs) == 0 and obs.dropped == 0
        assert obs.total("quantum-end") > 0  # counts still exact

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(capacity=-1)

    def test_jsonl_stream_is_complete_and_parseable(self, tmp_path):
        path = tmp_path / "run.jsonl"
        runner = ExperimentRunner(
            seed=SEED, trace=TraceConfig(capacity=16, jsonl_path=str(path))
        )
        record = runner.run_spec(_ep(), 2, _adaptive())
        obs = record.obs
        # The per-run path is derived from the shared config's path.
        files = sorted(tmp_path.glob("run-*.jsonl"))
        assert len(files) == 1
        lines = files[0].read_text().splitlines()
        events = [json.loads(line) for line in lines]
        # The stream holds every event, not just the ring's survivors.
        assert len(events) == sum(obs.counts.values()) > len(obs)
        kinds = {e["kind"] for e in events}
        assert "quantum-end" in kinds
        for event in events:
            assert "time" in event and "kind" in event

    def test_for_run_uniquifies_jsonl_paths(self):
        config = TraceConfig(jsonl_path="traces/batch.jsonl")
        a = config.for_run("IS", 4, "dyn 1:100")
        b = config.for_run("EP", 2, "1")
        assert a.jsonl_path != b.jsonl_path
        assert a.jsonl_path.endswith("batch-IS-n4-dyn-1-100.jsonl")
        assert config.for_run("IS", 4, "dyn 1:100").jsonl_path == a.jsonl_path
        # No JSONL sink: nothing to uniquify.
        assert TraceConfig().for_run("IS", 4, "x") == TraceConfig()

    def test_run_slug_is_filesystem_safe(self):
        slug = run_slug("IS", 64, "dyn 1.30:0.90 / fast")
        assert slug == "IS-n64-dyn-1.30-0.90-fast"

    def test_pickle_round_trip_drops_sink_and_listeners(self, tmp_path):
        config = TraceConfig(jsonl_path=str(tmp_path / "t.jsonl"))
        collector = TraceCollector(config)
        collector.add_packet_listener(lambda *a: None)
        collector.quantum_end(0, 10, 0, "hold", 10, 0.1, 0.0)
        clone = pickle.loads(pickle.dumps(collector))
        assert clone._sink is None and clone._packet_listeners == []
        assert clone.counts == collector.counts
        assert [e.kind for e in clone.events] == [e.kind for e in collector.events]
        collector.close()


class TestTrafficTraceRebase:
    def test_collector_conduit_matches_legacy_controller_hook(self):
        """The rebased TrafficTrace sees exactly what the legacy hook saw."""
        # New path: record_traffic installs the trace as a collector
        # listener (zero-ring conduit) inside ExperimentRunner.run.
        runner = ExperimentRunner(seed=SEED, record_traffic=True)
        record = runner.run_spec(_is(), 4, _adaptive())
        rebased = record.trace
        assert rebased is not None

        # Legacy path: the controller's own trace callable, driven by a
        # hand-built simulator identical to the runner's construction.
        from repro.core.cluster import ClusterConfig, ClusterSimulator

        legacy = TrafficTrace(4)
        workload = _is()
        nodes = [
            SimulatedNode(rank, app) for rank, app in enumerate(workload.build_apps(4))
        ]
        controller = NetworkController(4, PAPER_NETWORK(4), trace=legacy.record)
        simulator = ClusterSimulator(
            nodes,
            controller,
            AdaptiveQuantumPolicy(MICROSECOND, 1000 * MICROSECOND),
            ClusterConfig(seed=SEED),
        )
        result = simulator.run()
        assert result == record.result
        assert legacy.samples == rebased.samples
        assert legacy.total_packets == rebased.total_packets
        assert legacy.total_bytes == rebased.total_bytes

    def test_conduit_keeps_no_events(self):
        runner = ExperimentRunner(seed=SEED, record_traffic=True)
        record = runner.run_spec(_ep(), 2, _adaptive())
        # record_traffic alone does not expose a collector on the record...
        assert record.obs is None
        assert runner.traced_runs == []
        # ...and the trace itself carries the traffic series.
        assert record.trace.total_packets > 0


class TestParallelFarm:
    def test_pool_ships_collectors_back_in_request_order(self, tmp_path):
        from repro.harness.parallel import ParallelRunner

        requests = [
            (_ep(), 2, _adaptive()),
            (_is(), 2, _fixed(100)),
            (_ep(), 2, _fixed(100)),
        ]
        pooled = ParallelRunner(
            seed=SEED, max_workers=3, trace=TraceConfig(),
            cache_dir=tmp_path / "cache",
        )
        records = pooled.run_many(requests)
        assert all(record.obs is not None for record in records)
        # Worker-side collectors are registered in request order, not in
        # pool completion order.
        assert pooled.traced_runs == records
        serial = ParallelRunner(
            seed=SEED, max_workers=1, trace=TraceConfig(),
            cache_dir=tmp_path / "cache",
        )
        for pool_rec, serial_rec in zip(records, serial.run_many(requests)):
            assert pool_rec.result == serial_rec.result
            assert pool_rec.obs.counts == serial_rec.obs.counts
            assert pool_rec.obs.straggler_lag_total == serial_rec.obs.straggler_lag_total
        # Tracing disabled caching: the cache directory holds no entries.
        assert not list((tmp_path / "cache").rglob("*.json"))


class TestEventShape:
    def test_packet_identity_and_dict_round_trip(self):
        runner = ExperimentRunner(seed=SEED, trace=TraceConfig())
        record = runner.run_spec(_is(), 2, _adaptive())
        packets = record.obs.packet_events()
        assert packets
        for event in packets[:50]:
            identity = event.identity()
            assert identity == (
                event.src,
                event.dst,
                event.message_id,
                event.fragment,
                event.packet_kind,
                event.retransmit,
            )
            encoded = event.to_dict()
            assert encoded["kind"] == "packet"
            assert encoded["time"] == event.time
        quanta = record.obs.quantum_events()
        assert all(isinstance(e, QuantumEnd) for e in quanta)
        assert all(isinstance(e, PacketTrace) for e in packets)
