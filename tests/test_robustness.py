"""Cross-cutting robustness checks: odd sizes, topologies, doctests."""

import doctest

import pytest

from repro.core import ClusterConfig, ClusterSimulator, FixedQuantumPolicy
from repro.engine.units import MICROSECOND
from repro.network import (
    NetworkController,
    NicSwitchLatencyModel,
    TwoLevelTreeTopology,
)
from repro.node import SimulatedNode
from repro.node.transport import TransportConfig
from repro.workloads import (
    CgWorkload,
    EpWorkload,
    IsWorkload,
    LuWorkload,
    MgWorkload,
    NamdWorkload,
)

US = MICROSECOND

SMALL = {
    "EP": lambda: EpWorkload(total_ops=1e7, chunks=2),
    "IS": lambda: IsWorkload(total_keys=2**14, iterations=2, ops_per_key=8),
    "CG": lambda: CgWorkload(iterations=2, nonzeros=1e6, vector_bytes=16_384),
    "MG": lambda: MgWorkload(cycles=1, levels=3, fine_points=5e5),
    "LU": lambda: LuWorkload(timesteps=2, sweep_ops=4e6, planes=2, residual_every=1),
    "NAMD": lambda: NamdWorkload(timesteps=2, step_ops=8e6, max_partners=3),
}


def run(workload, size, latency=None, transport=None, seed=6):
    nodes = [
        SimulatedNode(i, app, transport=transport)
        for i, app in enumerate(workload.build_apps(size))
    ]
    from repro.network import PAPER_NETWORK

    controller = NetworkController(size, latency or PAPER_NETWORK(size))
    sim = ClusterSimulator(
        nodes, controller, FixedQuantumPolicy(US), ClusterConfig(seed=seed)
    )
    return sim.run()


@pytest.mark.parametrize("name", sorted(SMALL))
@pytest.mark.parametrize("size", [3, 6])
class TestOddClusterSizes:
    """Every workload must be deadlock-free off the power-of-two path."""

    def test_completes(self, name, size):
        result = run(SMALL[name](), size)
        assert result.completed
        assert result.controller_stats.stragglers == 0


class TestNonTrivialTopology:
    def test_is_over_two_level_tree(self):
        topology = TwoLevelTreeTopology(6, rack_size=3, edge_latency=200, core_latency=600)
        latency = NicSwitchLatencyModel(topology)
        result = run(SMALL["IS"](), 6, latency=latency)
        assert result.completed
        # Q = 1us is still below the topology's minimum latency.
        assert result.controller_stats.stragglers == 0

    def test_tree_latency_visible_in_makespan(self):
        flat = run(SMALL["LU"](), 6)
        topology = TwoLevelTreeTopology(
            6, rack_size=3, edge_latency=50_000, core_latency=100_000
        )
        slow = run(SMALL["LU"](), 6, latency=NicSwitchLatencyModel(topology))
        assert slow.makespan > flat.makespan


class TestTransportConservation:
    @pytest.mark.parametrize("window", [4_096, 16_384, 1 << 20])
    def test_all_bytes_arrive_under_any_window(self, window):
        result = run(
            SMALL["IS"](), 4, transport=TransportConfig(window_bytes=window)
        )
        assert result.completed
        sent = sum(node.messages_sent for node in result.node_stats)
        received = sum(node.messages_received for node in result.node_stats)
        assert sent == received  # acks are not messages; every message lands


class TestDoctests:
    def test_module_doctests(self):
        import repro.engine.units as units

        failures, _ = doctest.testmod(units)
        assert failures == 0
